//! Cycles-per-second microbenchmark of the regular-pass hot path.
//!
//! Runs the shared hot-path sweep ([`bench::hotbench`]: FastPass + plain
//! VCT on a 4×4 mesh, three rates) *serially and uncached*, so the
//! measured wall-clock is pure simulator time — exactly the per-cycle
//! loop the active-set optimisation targets. Low load is the interesting
//! regime: most sweep probes (zero-load latency, saturation bisection
//! floors) run there, and it is where a topology-proportional loop
//! wastes the most work.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin hotpath [-- label]
//! cargo run --release -p bench --bin hotpath -- --trace-overhead
//! cargo run --release -p bench --bin hotpath -- --phases
//! ```
//!
//! The default mode prints a `BENCH_*`-style JSON report (stamped with
//! `git_sha` and `schema_version`) for the hand-kept
//! `BENCH_hotpath.json` at the repo root.
//!
//! `--trace-overhead` instead measures the cost of the tracing hooks:
//! the same sweep is timed with tracing disabled, at counters level and
//! at full event level. The disabled number is the zero-overhead claim:
//! hooks compile to a branch on a disabled tracer, so it must sit within
//! noise of the plain hot-path figure.
//!
//! `--phases` attaches the wall-clock [`WallProbe`] to every simulation
//! and reports where the cycles/sec go, phase by phase (self time, no
//! double counting across nested phases), then prints a windowed
//! telemetry sparkline of the highest-load FastPass point. Probed runs
//! are slower than the headline number by construction — the hooks are
//! no longer empty — so this mode never reports cycles/sec.

use bench::hotbench::{self, Measurement, DEFAULT_REPS, MEASURE, WARMUP};
use bench::runner::make_sim;
use bench::{BenchReport, SchemeId, WallProbe};
use noc_sim::SamplerConfig;
use noc_trace::TraceLevel;
use traffic::SyntheticPattern;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    match arg.as_str() {
        "--trace-overhead" => trace_overhead(),
        "--phases" => phases(),
        label => headline(label),
    }
}

fn push_measurement(report: &mut BenchReport, prefix: &str, m: &Measurement) {
    report
        .push_f64(&format!("{prefix}cycles_per_sec"), m.cps_best.round())
        .push_f64(&format!("{prefix}cycles_per_sec_mean"), m.cps_mean.round())
        .push_f64(&format!("{prefix}best_rep_ms"), m.best * 1e3)
        .push_f64(&format!("{prefix}elapsed_ms"), m.total_secs * 1e3);
}

fn headline(label: &str) {
    // Warm the allocator/caches with one throwaway sweep.
    hotbench::run_sweep(None);
    let m = hotbench::measure(None, DEFAULT_REPS);
    // Same sweep through the batched executor (identical per-point
    // results, interleaved schedule) — reported alongside the serial
    // headline so both lanes accumulate perf history.
    let mb = hotbench::measure_batched(None, DEFAULT_REPS);
    let mut report = BenchReport::new("hotpath");
    report
        .push_str("label", label)
        .push_str("command", "cargo run --release -p bench --bin hotpath")
        .push_str("workload", &hotbench::workload_description(DEFAULT_REPS))
        .push_u64("total_cycles", m.total_cycles)
        .push_u64("total_delivered", m.total_delivered);
    push_measurement(&mut report, "", &m);
    push_measurement(&mut report, "batched_", &mb);
    println!("{}", report.to_json_pretty());
}

/// `--trace-overhead`: the same sweep at three tracing configurations —
/// hooks compiled in but tracer disabled (the default for every normal
/// run), counters level, and full event level.
fn trace_overhead() {
    hotbench::run_sweep(None); // warm up
    let off = hotbench::measure(None, DEFAULT_REPS);
    let counters = hotbench::measure(Some(TraceLevel::Counters), DEFAULT_REPS);
    let full = hotbench::measure(Some(TraceLevel::Full), DEFAULT_REPS);
    let pct = |m: &Measurement| 100.0 * (off.cps_best / m.cps_best - 1.0);
    let mut report = BenchReport::new("trace_overhead");
    report
        .push_str("benchmark", "tracing overhead on the regular-pass hot loop")
        .push_str(
            "command",
            "cargo run --release -p bench --bin hotpath -- --trace-overhead",
        )
        .push_str("workload", &hotbench::workload_description(DEFAULT_REPS))
        .push_str(
            "methodology",
            "fastest of the timed repetitions per level; off = hooks compiled in, \
             tracer disabled (every untraced run pays exactly this)",
        );
    push_measurement(&mut report, "off_", &off);
    push_measurement(&mut report, "counters_", &counters);
    report.push_f64("counters_slowdown_pct", pct(&counters));
    push_measurement(&mut report, "full_", &full);
    report.push_f64("full_slowdown_pct", pct(&full));
    println!("{}", report.to_json_pretty());
}

/// `--phases`: one probed sweep repetition with self-time attribution,
/// plus a windowed telemetry profile of the busiest point.
fn phases() {
    let (probe, times) = WallProbe::new();
    drop(probe); // only the shared handle is needed; probes are per-sim
    let reps = 5;
    for _ in 0..reps {
        hotbench::run_sweep_with(None, |sim| {
            sim.set_probe(Box::new(WallProbe::sharing(&times)));
        });
    }
    let t = times.lock().expect("phase accumulator lock");
    println!(
        "phase self-time over {reps} probed sweep repetitions\n({})\n",
        hotbench::workload_description(reps as u64)
    );
    print!("{}", t.report());
    drop(t);

    // Windowed telemetry of the highest-load FastPass point: where does
    // congestion sit inside the measurement window?
    let mut sim = make_sim(
        SchemeId::FastPass,
        SyntheticPattern::Uniform,
        *hotbench::RATES.last().expect("rates nonempty"),
        hotbench::MESH_SIZE,
        hotbench::FP_VCS,
        hotbench::SEED,
    );
    sim.set_sampler(&SamplerConfig {
        sample_every: MEASURE / 60,
        max_windows: 128,
    });
    sim.run_windows(WARMUP, MEASURE);
    sim.finish_sampling();
    println!();
    print!(
        "{}",
        bench::series_summary(sim.sampler().expect("sampler installed"))
    );
}
