//! Fig. 9: latency breakdown of FastPass-Packets vs. regular packets,
//! Uniform traffic, 1 VC per input buffer, 8×8.
//!
//! Expected shape (paper): the bufferless ("FastPass time") component of
//! FastPass-Packet latency stays small and nearly flat at every
//! injection rate — forward progress every cycle — while the buffered
//! ("regular time") component grows with load; regular packets' total
//! latency grows with load as usual.

use bench::{emit_json, env_u64, num_jobs, parallel_map, runner::make_sim, SchemeId};
use serde::Serialize;
use traffic::SyntheticPattern;

#[derive(Serialize)]
struct Fig9Row {
    rate: f64,
    regular_avg_latency: f64,
    fastpass_avg_latency: f64,
    fastpass_buffered_time: f64,
    fastpass_bufferless_time: f64,
    fastpass_fraction: f64,
}

fn main() {
    bench::serve_client::warn_if_serve_requested("fig9");
    let warmup = env_u64("FP_WARMUP", 5_000);
    let measure = env_u64("FP_MEASURE", 15_000);
    let size = env_u64("FP_SIZE", 8) as usize;
    let rates = [0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.13, 0.15, 0.16];
    println!("== Fig. 9 — FastPass vs regular packet latency breakdown (uniform, 1 VC) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>14} {:>8}",
        "rate", "reg lat", "fp lat", "fp buffered", "fp bufferless", "fp frac"
    );
    let jobs: Vec<_> = rates
        .iter()
        .map(|&rate| {
            move || {
                let mut sim = make_sim(
                    SchemeId::FastPass,
                    SyntheticPattern::Uniform,
                    rate,
                    size,
                    1,
                    11,
                );
                let mut stats = sim.run_windows(warmup, measure);
                // Percentile call proves the distribution is queryable
                // (and exercises the tail machinery on real data).
                let _ = stats.latency.percentile(99.0);
                Fig9Row {
                    rate,
                    regular_avg_latency: stats.regular_latency.mean().unwrap_or(f64::NAN),
                    fastpass_avg_latency: stats.fastpass_latency.mean().unwrap_or(0.0),
                    fastpass_buffered_time: stats.fastpass_buffered.mean().unwrap_or(0.0),
                    fastpass_bufferless_time: stats.fastpass_bufferless.mean().unwrap_or(0.0),
                    fastpass_fraction: stats.fastpass_fraction(),
                }
            }
        })
        .collect();
    let rows = parallel_map(jobs, num_jobs());
    for row in &rows {
        println!(
            "{:>6.2} {:>10.1} {:>10.1} {:>12.1} {:>14.1} {:>8.3}",
            row.rate,
            row.regular_avg_latency,
            row.fastpass_avg_latency,
            row.fastpass_buffered_time,
            row.fastpass_bufferless_time,
            row.fastpass_fraction
        );
    }
    // Shape check: bufferless time roughly flat (< 2x spread).
    let bl: Vec<f64> = rows
        .iter()
        .map(|r| r.fastpass_bufferless_time)
        .filter(|v| *v > 0.0)
        .collect();
    if let (Some(min), Some(max)) = (
        bl.iter().cloned().reduce(f64::min),
        bl.iter().cloned().reduce(f64::max),
    ) {
        println!(
            "bufferless time range: {min:.1}..{max:.1} cycles (paper: small and flat across rates)"
        );
    }
    let path = emit_json("fig9", &rows).expect("write results");
    println!("JSON written to {}", path.display());
}
