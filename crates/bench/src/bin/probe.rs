//! Diagnostic probe: accepted throughput and queue residency per scheme.
//! Not part of the paper's figures; used to calibrate the substrate.

use bench::{env_u64, runner::make_sim, ALL_SCHEMES};
use traffic::SyntheticPattern;

fn main() {
    let warmup = env_u64("FP_WARMUP", 3_000);
    let measure = env_u64("FP_MEASURE", 8_000);
    let size = env_u64("FP_SIZE", 8) as usize;
    let pattern = match std::env::var("FP_PATTERN").as_deref() {
        Ok("uniform") => SyntheticPattern::Uniform,
        Ok("shuffle") => SyntheticPattern::Shuffle,
        _ => SyntheticPattern::Transpose,
    };
    println!("pattern={} size={size}", pattern.name());
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "scheme", "rate", "thpt", "lat", "gen", "sourceQ", "network", "fpfrac"
    );
    for id in ALL_SCHEMES {
        for rate in [0.05, 0.10, 0.15, 0.20, 0.30] {
            let mut sim = make_sim(id, pattern, rate, size, 4, 77);
            let stats = sim.run_windows(warmup, measure);
            let mesh = sim.core.mesh();
            let source_q: usize = mesh.nodes().map(|n| sim.core.ni(n).source_depth()).sum();
            let resident = sim.core.resident_packets() - source_q;
            println!(
                "{:<10} {:>6.2} {:>8.4} {:>8.1} {:>8} {:>9} {:>9} {:>8.3}",
                id.name(),
                rate,
                stats.throughput_packets(),
                stats.avg_latency(),
                stats.generated,
                source_q,
                resident,
                stats.fastpass_fraction(),
            );
        }
    }
}
