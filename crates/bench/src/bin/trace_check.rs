//! Validates Chrome `trace_event` JSON files produced by traced runs.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin trace_check -- [--require-bypass] <file.json>...
//! ```
//!
//! Each file must be a well-formed trace-event array (see
//! [`bench::check_chrome_trace`] for the exact rules). With
//! `--require-bypass`, at least one file must contain *both* regular
//! link traversals and bypass lane traversals — the CI smoke gate uses
//! this to prove the pipeline keeps the two traffic kinds apart.
//!
//! Exits 0 when every file validates (and the bypass requirement, if
//! requested, is met across the set); prints the first problem and
//! exits 1 otherwise.

use bench::check_chrome_trace;

fn main() {
    let mut require_bypass = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-bypass" => require_bypass = true,
            "--help" | "-h" => {
                eprintln!("usage: trace_check [--require-bypass] <file.json>...");
                return;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!(
            "trace_check: no input files (usage: trace_check [--require-bypass] <file.json>...)"
        );
        std::process::exit(1);
    }
    let mut any_bypass_pair = false;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: {f}: {e}");
                std::process::exit(1);
            }
        };
        // Per-file validation is structural only; the bypass requirement
        // is checked across the whole set below.
        match check_chrome_trace(&text, false) {
            Ok(s) => {
                println!(
                    "{f}: OK — {} events ({} complete, {} instants, {} metadata){}",
                    s.events,
                    s.complete,
                    s.instants,
                    s.metadata,
                    if s.has_regular_link && s.has_bypass_lane {
                        ", regular + bypass traffic"
                    } else if s.has_bypass_lane {
                        ", bypass traffic only"
                    } else {
                        ", regular traffic only"
                    }
                );
                any_bypass_pair |= s.has_regular_link && s.has_bypass_lane;
            }
            Err(e) => {
                eprintln!("trace_check: {f}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }
    if require_bypass && !any_bypass_pair {
        eprintln!(
            "trace_check: no file contains both regular (`link`) and bypass (`lane`) \
             traversals — bypass traffic is indistinguishable or absent"
        );
        std::process::exit(1);
    }
    println!("trace_check: {} file(s) valid", files.len());
}
