//! Validates Chrome `trace_event` JSON files produced by traced runs.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --bin trace_check -- \
//!     [--require-bypass] [--require-counters] <file.json>...
//! ```
//!
//! Each file must be a well-formed trace-event array (see
//! [`bench::check_chrome_trace`] for the exact rules). With
//! `--require-bypass`, at least one file must contain *both* regular
//! link traversals and bypass lane traversals — the CI smoke gate uses
//! this to prove the pipeline keeps the two traffic kinds apart. With
//! `--require-counters`, every file must carry at least one telemetry
//! counter (`"C"`) track, proving the windowed-sampler merge ran.
//!
//! Exits 0 when every file validates (and the bypass/counter
//! requirements, if requested, are met); prints the first problem and
//! exits 1 otherwise.

use bench::check_chrome_trace_full;

fn main() {
    let mut require_bypass = false;
    let mut require_counters = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-bypass" => require_bypass = true,
            "--require-counters" => require_counters = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_check [--require-bypass] [--require-counters] <file.json>..."
                );
                return;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!(
            "trace_check: no input files (usage: trace_check [--require-bypass] \
             [--require-counters] <file.json>...)"
        );
        std::process::exit(1);
    }
    let mut any_bypass_pair = false;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: {f}: {e}");
                std::process::exit(1);
            }
        };
        // Bypass is checked across the whole set below; the counter
        // requirement is per file (every trace gets its own merge).
        match check_chrome_trace_full(&text, false, require_counters) {
            Ok(s) => {
                println!(
                    "{f}: OK — {} events ({} complete, {} instants, {} metadata, {} counters){}",
                    s.events,
                    s.complete,
                    s.instants,
                    s.metadata,
                    s.counters,
                    if s.has_regular_link && s.has_bypass_lane {
                        ", regular + bypass traffic"
                    } else if s.has_bypass_lane {
                        ", bypass traffic only"
                    } else {
                        ", regular traffic only"
                    }
                );
                any_bypass_pair |= s.has_regular_link && s.has_bypass_lane;
            }
            Err(e) => {
                eprintln!("trace_check: {f}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }
    if require_bypass && !any_bypass_pair {
        eprintln!(
            "trace_check: no file contains both regular (`link`) and bypass (`lane`) \
             traversals — bypass traffic is indistinguishable or absent"
        );
        std::process::exit(1);
    }
    println!("trace_check: {} file(s) valid", files.len());
}
