//! Irregular-mesh figure (§III-F): FastPass on a 4×4 mesh with one
//! channel disabled, certified statically, next to the healthy-mesh
//! latency reference.
//!
//! The simulator substrate executes regular meshes only, so the
//! irregular point itself is covered by proof rather than simulation:
//! `noc-prove` certifies the 4×4-minus-channel topology (holistic-path
//! Eulerian circuit + disjoint lane segmentation, `holistic-lanes`)
//! and a band of seeded fault configurations from the deterministic
//! generator. The healthy 4×4 FastPass curve runs through the shared
//! sweep runner as the baseline the degraded mesh is compared against,
//! and everything lands together in `results/fig_irregular.json`.
//!
//! Pass `--serve[=SOCKET]` (or set `NOC_SERVE`) to route the reference
//! sweep through a running `nocserve` daemon; the certification legs
//! always run locally (they are proofs, not sweep points).

use bench::{emit_json, run_sweeps, SchemeId, SweepResult, SweepSpec};
use noc_prove::{certify, configs, Certificate};
use serde::Serialize;
use traffic::SyntheticPattern;

/// Number of seeded fault points certified alongside the figure's
/// 4×4-minus-channel topology.
const FAULT_POINTS: usize = 4;

#[derive(Serialize)]
struct FigIrregular {
    /// Healthy-mesh FastPass reference sweep (regular 4×4).
    reference: Vec<SweepResult>,
    /// Static deadlock-freedom certificates: the 4×4-minus-channel
    /// figure point plus the seeded fault band.
    certificates: Vec<Certificate>,
}

fn main() {
    println!("== Fig. irregular — FastPass on fault-degraded meshes ==");

    // Healthy-mesh reference: the same 4×4 FastPass configuration the
    // degraded topologies are judged against, on the shared runner.
    let spec = SweepSpec {
        id: SchemeId::FastPass,
        pattern: SyntheticPattern::Uniform,
        rates: vec![0.02, 0.04, 0.06, 0.08, 0.10],
        size: 4,
        fp_vcs: 2,
        warmup: 1_000,
        measure: 3_000,
        seed: 5,
    };
    let reference = run_sweeps(std::slice::from_ref(&spec));
    println!(
        "healthy 4x4 reference: saturation {:.2}, zero-load latency {:.1}",
        reference[0].saturation_rate(),
        reference[0].points[0].avg_latency
    );

    // Certified irregular points: the figure's 4×4-minus-channel mesh
    // plus seeded fault configs from the deterministic generator.
    let mut points = vec![configs::irregular_smoke()];
    points.extend(configs::fault_suite(FAULT_POINTS));
    let mut certificates = Vec::new();
    let mut failed = Vec::new();
    for cfg in &points {
        let cert = certify(cfg);
        println!("  {}", cert.summary());
        if !cert.certified() {
            failed.push(cert.config.clone());
        }
        certificates.push(cert);
    }

    let path = emit_json(
        "fig_irregular",
        &FigIrregular {
            reference,
            certificates,
        },
    )
    .expect("write results");
    println!("JSON written to {}", path.display());
    assert!(
        failed.is_empty(),
        "irregular points failed certification: {}",
        failed.join(", ")
    );
}
