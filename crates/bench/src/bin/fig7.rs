//! Fig. 7: average packet latency vs. injection rate for synthetic
//! traffic on an 8×8 mesh — Transpose, Shuffle and Bit-rotation panels
//! plus the Uniform data series, all eight schemes.
//!
//! FastPass runs with 4 VCs per input buffer and 0 VNs; the VN-based
//! baselines use 6 VNs × 2 VCs (Table II). Expected shape (paper):
//! SPIN and TFC saturate first, then MinBD/EscapeVC, then the periodic
//! schemes (SWAP/DRAIN/Pitstop), with FastPass sustaining ~1.8× SPIN/TFC
//! and up to ~51% more than the periodic group.
//!
//! Pass `--serve[=SOCKET]` (or set `NOC_SERVE`) to route the sweeps
//! through a running `nocserve` daemon instead of simulating in-process;
//! the emitted JSON is bitwise identical either way.

use bench::{emit_json, env_u64, run_sweeps, SweepSpec, ALL_SCHEMES};
use traffic::SyntheticPattern;

fn main() {
    let warmup = env_u64("FP_WARMUP", 5_000);
    let measure = env_u64("FP_MEASURE", 15_000);
    let size = env_u64("FP_SIZE", 8) as usize;
    // The paper sweeps 0.02..0.46 with a mostly-1-flit mix; this
    // substrate's 50/50 1-/5-flit mix shifts saturation to ~1/3 of those
    // rates, so the sweep samples the same knee region proportionally.
    let rates: Vec<f64> = (1..=12).map(|i| 0.015 * i as f64).collect();
    let patterns = [
        SyntheticPattern::Transpose,
        SyntheticPattern::Shuffle,
        SyntheticPattern::BitRotation,
        SyntheticPattern::Uniform,
    ];
    let mut specs = Vec::new();
    for pattern in patterns {
        for id in ALL_SCHEMES {
            specs.push(SweepSpec {
                id,
                pattern,
                rates: rates.clone(),
                size,
                fp_vcs: 4,
                warmup,
                measure,
                seed: 99,
            });
        }
    }
    let all = run_sweeps(&specs);
    for (pi, pattern) in patterns.iter().enumerate() {
        let results = &all[pi * ALL_SCHEMES.len()..(pi + 1) * ALL_SCHEMES.len()];
        println!(
            "== Fig. 7 ({}) — avg latency vs injection rate ==",
            pattern.name()
        );
        print!("{:>6}", "rate");
        for id in ALL_SCHEMES {
            print!("{:>10}", id.name());
        }
        println!();
        for (i, &rate) in rates.iter().enumerate() {
            print!("{rate:>6.2}");
            for r in results {
                let lat = r.points[i].avg_latency;
                if lat.is_finite() && lat < 10_000.0 {
                    print!("{lat:>10.1}");
                } else {
                    print!("{:>10}", "sat");
                }
            }
            println!();
        }
        println!("saturation rates (first rate with latency > 3x zero-load):");
        for r in results {
            println!("  {:<10} {:.2}", r.scheme, r.saturation_rate());
        }
        let fp = results.iter().find(|r| r.scheme == "FastPass").unwrap();
        let spin = results.iter().find(|r| r.scheme == "SPIN").unwrap();
        let swap = results.iter().find(|r| r.scheme == "SWAP").unwrap();
        println!(
            "  FastPass/SPIN saturation ratio: {:.2} (paper: ~1.8x)",
            fp.saturation_rate() / spin.saturation_rate().max(1e-9)
        );
        println!(
            "  FastPass/SWAP saturation ratio: {:.2} (paper: up to ~1.5x)",
            fp.saturation_rate() / swap.saturation_rate().max(1e-9)
        );
        println!();
    }
    let path = emit_json("fig7", &all).expect("write results");
    println!("JSON written to {}", path.display());
}
