//! Perf-history regression gate over the hot-path benchmark.
//!
//! Measures the shared hot-path sweep ([`bench::hotbench`] — the same
//! workload and methodology as `hotpath`, so numbers are comparable),
//! compares the result against the most recent recorded baseline in the
//! history file, appends the fresh measurement as a new history row, and
//! exits nonzero when cycles/sec regressed more than the threshold.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin perfwatch -- \
//!     [--history results/perf_history.jsonl] [--threshold 0.10] [--reps N]
//! ```
//!
//! The history is append-only JSONL (`{"git_sha", "bench", "metric",
//! "value"}` per line); CI uploads it as an artifact and re-seeds the
//! next run with it, so the baseline follows the branch. Two runs on the
//! same commit must both exit 0: the first records the baseline, the
//! second compares against it (same code, same speed, modulo the
//! threshold's noise allowance).

use bench::hotbench::{self, DEFAULT_REPS};
use bench::perfwatch::{append_row, judge, load_history, PerfRow, Verdict, DEFAULT_THRESHOLD};
use std::path::PathBuf;

const BENCH_NAME: &str = "hotpath";
const METRIC: &str = "cycles_per_sec";
/// Second gated lane: the same sweep through the batched executor.
const METRIC_BATCHED: &str = "batched_cycles_per_sec";

struct Args {
    history: PathBuf,
    threshold: f64,
    reps: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        history: PathBuf::from("results/perf_history.jsonl"),
        threshold: DEFAULT_THRESHOLD,
        reps: DEFAULT_REPS,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("perfwatch: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--history" => args.history = PathBuf::from(value("--history")),
            "--threshold" => {
                args.threshold = value("--threshold").parse().unwrap_or_else(|e| {
                    eprintln!("perfwatch: bad --threshold: {e}");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                args.reps = value("--reps").parse().unwrap_or_else(|e| {
                    eprintln!("perfwatch: bad --reps: {e}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: perfwatch [--history <file.jsonl>] [--threshold <frac>] [--reps <n>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("perfwatch: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let history = match load_history(&args.history) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("perfwatch: reading {}: {e}", args.history.display());
            std::process::exit(2);
        }
    };

    hotbench::run_sweep(None); // warm allocator/caches
    let m = hotbench::measure(None, args.reps);
    let mb = hotbench::measure_batched(None, args.reps);
    println!(
        "perfwatch: {} = {:.0} (mean {:.0}), {} = {:.0} (mean {:.0}) over {}",
        METRIC,
        m.cps_best,
        m.cps_mean,
        METRIC_BATCHED,
        mb.cps_best,
        mb.cps_mean,
        hotbench::workload_description(args.reps)
    );

    // Both lanes are judged against their own baselines with the same
    // threshold; either regressing fails the run. Rows are appended
    // before the verdict so a failing run still extends the history.
    let mut failed = false;
    for (metric, value) in [(METRIC, m.cps_best), (METRIC_BATCHED, mb.cps_best)] {
        let verdict = judge(&history, BENCH_NAME, metric, value, args.threshold);
        let row = PerfRow {
            git_sha: bench::git_sha(),
            bench_name: BENCH_NAME.to_string(),
            metric: metric.to_string(),
            value,
        };
        if let Err(e) = append_row(&args.history, &row) {
            eprintln!("perfwatch: appending to {}: {e}", args.history.display());
            std::process::exit(2);
        }
        println!(
            "perfwatch: recorded {} row for {} in {}",
            metric,
            row.git_sha,
            args.history.display()
        );

        match verdict {
            Verdict::NoBaseline => {
                println!("perfwatch: {metric}: no prior baseline — this run seeds the history. OK");
            }
            Verdict::Ok { baseline, ratio } => {
                println!(
                    "perfwatch: {}: {:.0} vs baseline {:.0} ({:+.1}%) within {:.0}% gate. OK",
                    metric,
                    value,
                    baseline,
                    (ratio - 1.0) * 100.0,
                    args.threshold * 100.0
                );
            }
            Verdict::Regression { baseline, ratio } => {
                eprintln!(
                    "perfwatch: REGRESSION — {}: {:.0} vs baseline {:.0} ({:.1}% drop, gate {:.0}%)",
                    metric,
                    value,
                    baseline,
                    (1.0 - ratio) * 100.0,
                    args.threshold * 100.0
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
