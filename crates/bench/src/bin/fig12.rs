//! Fig. 12: 99th-percentile tail latency on application traffic
//! (log scale in the paper), five schemes.
//!
//! Expected shape (paper): FastPass(0VN,2VC) has the lowest tail —
//! multiple concurrent FastPass-Lanes bypass congested regions — and
//! DRAIN the worst (wholesale misrouting during drains).

use bench::{emit_json, env_u64, num_jobs, parallel_map, SchemeId};
use noc_sim::Simulation;
use serde::Serialize;
use traffic::AppModel;

#[derive(Serialize)]
struct Fig12Cell {
    app: String,
    scheme: String,
    p99_latency: u64,
}

fn main() {
    bench::serve_client::warn_if_serve_requested("fig12");
    let size = env_u64("FP_SIZE", 8) as usize;
    let warmup = env_u64("FP_WARMUP", 10_000);
    let measure = env_u64("FP_MEASURE", 40_000);
    let schemes = [
        SchemeId::Spin,
        SchemeId::Swap,
        SchemeId::Drain,
        SchemeId::Pitstop,
        SchemeId::FastPass,
    ];
    // One job per (app, scheme) cell, fanned out across NOC_JOBS workers.
    let grid: Vec<(AppModel, SchemeId)> = AppModel::FIG12
        .iter()
        .flat_map(|&app| schemes.iter().map(move |&id| (app, id)))
        .collect();
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(app, id)| {
            move || {
                let cfg = id.sim_config(size, 2, 17);
                let nodes = cfg.mesh.num_nodes();
                let scheme = id.build(&cfg, 17);
                let workload = app.workload(nodes, None);
                let mut sim = Simulation::new(cfg, scheme, Box::new(workload));
                let mut stats = sim.run_windows(warmup, measure);
                stats.latency.percentile(99.0).unwrap_or(0)
            }
        })
        .collect();
    let p99s = parallel_map(jobs, num_jobs());
    let mut cells = Vec::new();
    println!("== Fig. 12 — 99th percentile packet latency (cycles) ==");
    print!("{:<14}", "app");
    for id in schemes {
        print!("{:>10}", id.name());
    }
    println!();
    let mut results = grid.iter().zip(p99s);
    for app in AppModel::FIG12 {
        print!("{:<14}", app.name());
        for _ in schemes {
            let (&(_, id), p99) = results.next().expect("one result per (app, scheme)");
            print!("{p99:>10}");
            cells.push(Fig12Cell {
                app: app.name().to_string(),
                scheme: id.name().to_string(),
                p99_latency: p99,
            });
        }
        println!();
    }
    // Geometric-mean summary across apps per scheme.
    println!("\ngeometric mean across apps:");
    for id in schemes {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|c| c.scheme == id.name() && c.p99_latency > 0)
            .map(|c| (c.p99_latency as f64).ln())
            .collect();
        let gm = (vals.iter().sum::<f64>() / vals.len() as f64).exp();
        println!("  {:<10} {gm:>10.1}", id.name());
    }
    let path = emit_json("fig12", &cells).expect("write results");
    println!("JSON written to {}", path.display());
}
