//! CI smoke sweep: a 4×4 mesh, three injection rates, FastPass plus the
//! plain-VCT substrate baseline, run through the parallel executor.
//!
//! Exercises the whole stack — registry, work-queue scheduler, result
//! cache, JSON emission — end to end in a few seconds, and fails loudly
//! if any point produces a non-finite latency or delivers nothing.
//!
//! `--trace[=level]` (default level `full`) additionally re-runs two
//! traced points — one low-load uniform point and one high-load FastPass
//! transpose point that actually exercises the bypass lanes — and writes
//! Chrome trace / metrics / lifetime artifacts into `trace/` (override
//! with `FP_TRACE_OUT`). Traced runs never touch the sweep cache, so the
//! cache-hit accounting of the untraced sweep is unchanged.
//!
//! `--serve[=SOCKET]` (or `NOC_SERVE`) routes the sweep through a
//! running `nocserve` daemon instead of the in-process executor; the
//! emitted `smoke.json` is bitwise identical either way (the `serve` CI
//! job diffs the two). The assertion legs (irregular certification,
//! fault pipeline, telemetry) always run locally.

use bench::runner::make_sim;
use bench::trace_out::{run_traced_point, trace_out_dir};
use bench::{emit_json, run_sweeps, SchemeId, SweepSpec};
use noc_sim::SamplerConfig;
use noc_trace::{TraceConfig, TraceLevel};
use traffic::SyntheticPattern;

fn parse_trace_flag() -> Option<TraceLevel> {
    for arg in std::env::args().skip(1) {
        if arg == "--trace" {
            return Some(TraceLevel::Full);
        }
        if let Some(level) = arg.strip_prefix("--trace=") {
            match TraceLevel::parse(level) {
                Ok(l) => return Some(l),
                Err(e) => {
                    eprintln!("smoke: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn main() {
    let trace_level = parse_trace_flag();
    let rates = vec![0.02, 0.05, 0.08];
    let specs: Vec<SweepSpec> = [SchemeId::FastPass, SchemeId::Vct]
        .iter()
        .map(|&id| SweepSpec {
            id,
            pattern: SyntheticPattern::Uniform,
            rates: rates.clone(),
            size: 4,
            fp_vcs: 2,
            warmup: 1_000,
            measure: 3_000,
            seed: 5,
        })
        .collect();
    let results = run_sweeps(&specs);
    for r in &results {
        assert_eq!(r.points.len(), rates.len(), "{}: missing points", r.scheme);
        for p in &r.points {
            assert!(
                p.avg_latency.is_finite(),
                "{} rate={} produced non-finite latency",
                r.scheme,
                p.rate
            );
            assert!(
                p.delivered > 0,
                "{} rate={} delivered nothing",
                r.scheme,
                p.rate
            );
        }
        println!(
            "{:<10} saturation {:.2}, zero-load latency {:.1}",
            r.scheme,
            r.saturation_rate(),
            r.points[0].avg_latency
        );
    }
    let path = emit_json("smoke", &results).expect("write results");
    println!("smoke sweep OK — JSON written to {}", path.display());
    run_irregular_smoke();
    run_fault_certification();
    print_telemetry_summary(&specs[0]);

    if let Some(level) = trace_level {
        run_traced_smoke(level, &specs[0]);
    }
}

/// The irregular smoke point: a 4×4 mesh with the 5↔6 channel disabled,
/// run through the `fastpass::irregular` lane derivation (Hierholzer
/// holistic path + segmentation). The simulator substrate only executes
/// regular meshes, so the smoke coverage here is the static lane lemmas:
/// the derived path must cover every surviving directed link exactly
/// once and segment into disjoint lanes for every partition count.
/// Shares the checker's validation (`noc-check` runs the same point in
/// its static matrix), so bench and checker cannot drift apart.
fn run_irregular_smoke() {
    let topo = noc_check::configs::irregular_smoke_topo();
    let fails = noc_check::configs::irregular_static_failures();
    assert!(
        fails.is_empty(),
        "irregular smoke point failed: {}",
        fails.join("; ")
    );
    println!(
        "irregular 4x4 (one channel disabled) OK — {} directed links covered",
        topo.directed_links().len()
    );
}

/// Smoke coverage for the seeded fault pipeline: the generator is
/// deterministic by `(seed, count)` (same inputs, same disabled set),
/// and every generated point carries a static deadlock-freedom
/// certificate from `noc-prove` (`holistic-lanes`: Eulerian holistic
/// path + disjoint segmentation on the surviving links).
fn run_fault_certification() {
    let mesh = noc_core::topology::Mesh::new(8, 8);
    let a = noc_core::fault::generate(mesh, 3, 4).expect("connected 8x8 fault config");
    let b = noc_core::fault::generate(mesh, 3, 4).expect("connected 8x8 fault config");
    assert_eq!(
        a.disabled, b.disabled,
        "fault generator must be deterministic by (seed, count)"
    );
    for cfg in noc_prove::configs::fault_suite(2) {
        let cert = noc_prove::certify(&cfg);
        assert!(cert.certified(), "fault point failed: {}", cert.summary());
        println!("certified {} ({})", cert.config, cert.proof);
    }
}

/// Re-runs the highest-rate point of `spec` with the windowed sampler
/// and prints a sparkline summary — a glance at how delivery, latency
/// and in-flight population evolve inside the measurement window. Runs
/// outside the parallel executor (samplers are per-simulation state),
/// so sweep cache accounting is untouched.
fn print_telemetry_summary(spec: &SweepSpec) {
    let rate = spec.rates.last().copied().expect("spec has rates");
    let mut sim = make_sim(
        spec.id,
        spec.pattern,
        rate,
        spec.size,
        spec.fp_vcs,
        spec.seed,
    );
    sim.set_sampler(&SamplerConfig {
        sample_every: (spec.measure / 60).max(1),
        max_windows: 128,
    });
    sim.run_windows(spec.warmup, spec.measure);
    sim.finish_sampling();
    println!(
        "\n{} rate {rate} — {}",
        spec.id.name(),
        bench::series_summary(sim.sampler().expect("sampler installed"))
    );
}

/// Traces one low-load point from the untraced sweep plus one high-load
/// FastPass transpose point (rate 0.3, single-VC buffers) where upgrades
/// demonstrably fire, so the artifacts contain both regular `link` and
/// bypass `lane` traversals for `trace_check --require-bypass`.
fn run_traced_smoke(level: TraceLevel, low_load: &SweepSpec) {
    let cfg = TraceConfig {
        level,
        ..TraceConfig::default()
    };
    let bypass_spec = SweepSpec {
        id: SchemeId::FastPass,
        pattern: SyntheticPattern::Transpose,
        rates: vec![0.3],
        size: 4,
        fp_vcs: 1,
        warmup: 2_000,
        measure: 8_000,
        seed: 9,
    };
    let dir = trace_out_dir();
    for (spec, rate) in [(low_load, 0.05), (&bypass_spec, 0.3)] {
        let paths = run_traced_point(spec, rate, &cfg, &dir).expect("traced point");
        for p in &paths {
            println!("traced {} — {}", spec.id.name(), p.display());
        }
    }
}
