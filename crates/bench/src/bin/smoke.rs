//! CI smoke sweep: a 4×4 mesh, three injection rates, FastPass plus the
//! plain-VCT substrate baseline, run through the parallel executor.
//!
//! Exercises the whole stack — registry, work-queue scheduler, result
//! cache, JSON emission — end to end in a few seconds, and fails loudly
//! if any point produces a non-finite latency or delivers nothing.

use bench::{emit_json, run_sweep_parallel, SchemeId, SweepOptions, SweepSpec};
use traffic::SyntheticPattern;

fn main() {
    let rates = vec![0.02, 0.05, 0.08];
    let specs: Vec<SweepSpec> = [SchemeId::FastPass, SchemeId::Vct]
        .iter()
        .map(|&id| SweepSpec {
            id,
            pattern: SyntheticPattern::Uniform,
            rates: rates.clone(),
            size: 4,
            fp_vcs: 2,
            warmup: 1_000,
            measure: 3_000,
            seed: 5,
        })
        .collect();
    let results = run_sweep_parallel(&specs, &SweepOptions::from_env());
    for r in &results {
        assert_eq!(r.points.len(), rates.len(), "{}: missing points", r.scheme);
        for p in &r.points {
            assert!(
                p.avg_latency.is_finite(),
                "{} rate={} produced non-finite latency",
                r.scheme,
                p.rate
            );
            assert!(
                p.delivered > 0,
                "{} rate={} delivered nothing",
                r.scheme,
                p.rate
            );
        }
        println!(
            "{:<10} saturation {:.2}, zero-load latency {:.1}",
            r.scheme,
            r.saturation_rate(),
            r.points[0].avg_latency
        );
    }
    let path = emit_json("smoke", &results).expect("write results");
    println!("smoke sweep OK — JSON written to {}", path.display());
}
