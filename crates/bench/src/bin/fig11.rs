//! Fig. 11: post-P&R router power and area (28 nm analytical model),
//! six configurations.
//!
//! Expected shape (paper): FastPass and Pitstop (0 VNs) cut ~40% of the
//! 6-VN routers' area/power; SPIN is the most expensive (+6% detection
//! circuit over EscapeVC); FastPass's own overhead is ~4% of its router.

use bench::emit_json;
use noc_power::fig11_configs;

fn main() {
    bench::serve_client::warn_if_serve_requested("fig11");
    let rows = fig11_configs();
    println!("== Fig. 11 — router area (um^2) and static power (uW) ==");
    println!(
        "{:<10} {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} | {:>9}",
        "Scheme",
        "Config",
        "Buffers",
        "Crossbar",
        "Arbiters",
        "NIQueues",
        "Overhead",
        "AreaTotal",
        "PowerTot"
    );
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>10.0} | {:>9.1}",
            r.scheme,
            r.config,
            r.area.buffers,
            r.area.crossbar,
            r.area.arbiters,
            r.area.ni_queues,
            r.area.overhead,
            r.area.total(),
            r.power.total(),
        );
    }
    let escape = rows.iter().find(|r| r.scheme == "EscapeVC").unwrap();
    let fp = rows.iter().find(|r| r.scheme == "FastPass").unwrap();
    println!(
        "\nFastPass vs EscapeVC: area -{:.0}% (paper: -40%), power -{:.0}% (paper: -41%)",
        100.0 * (1.0 - fp.area.total() / escape.area.total()),
        100.0 * (1.0 - fp.power.total() / escape.power.total()),
    );
    println!(
        "FastPass overhead: {:.1}% of its router (paper: ~4%)",
        100.0 * fp.area.overhead / fp.area.total()
    );
    let path = emit_json("fig11", &rows).expect("write results");
    println!("JSON written to {}", path.display());
}
