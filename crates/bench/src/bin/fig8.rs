//! Fig. 8: saturation throughput as the network scales (4×4, 8×8,
//! 16×16), Transpose traffic, 4 VCs for FastPass.
//!
//! Expected shape (paper): FastPass wins at every size and its margin
//! *grows* with size (more partitions ⇒ more concurrent FastPass-Lanes):
//! +17% over SWAP at 4×4, +67% at 8×8, +78% at 16×16. SPIN is lowest
//! everywhere (detection latency scales with size).
//!
//! Pass `--serve[=SOCKET]` (or set `NOC_SERVE`) to route the sweeps
//! through a running `nocserve` daemon instead of simulating in-process.

use bench::{emit_json, env_u64, run_sweeps, SchemeId, SweepSpec};
use serde::Serialize;
use traffic::SyntheticPattern;

#[derive(Serialize)]
struct Fig8Row {
    scheme: String,
    size: usize,
    saturation_throughput: f64,
}

fn main() {
    let warmup = env_u64("FP_WARMUP", 4_000);
    let measure = env_u64("FP_MEASURE", 10_000);
    let schemes = [
        SchemeId::Spin,
        SchemeId::Swap,
        SchemeId::Drain,
        SchemeId::Pitstop,
        SchemeId::FastPass,
    ];
    let sizes = [4usize, 8, 16];
    let rates: Vec<f64> = (1..=12).map(|i| 0.02 * i as f64).collect();
    let mut specs = Vec::new();
    for size in sizes {
        for id in schemes {
            specs.push(SweepSpec {
                id,
                pattern: SyntheticPattern::Transpose,
                rates: rates.clone(),
                size,
                fp_vcs: 4,
                warmup,
                measure,
                seed: 7,
            });
        }
    }
    let results = run_sweeps(&specs);
    let mut rows = Vec::new();
    println!("== Fig. 8 — saturation throughput vs network size (transpose) ==");
    print!("{:>6}", "size");
    for id in schemes {
        print!("{:>10}", id.name());
    }
    println!();
    let mut sweeps = results.iter();
    for size in sizes {
        print!("{size:>4}x{size:<2}");
        for id in schemes {
            let r = sweeps.next().expect("one sweep per (size, scheme)");
            // Accepted throughput at the saturation rate.
            let sat = r.saturation_rate();
            let thpt = r
                .points
                .iter()
                .filter(|p| p.rate <= sat + 1e-9)
                .map(|p| p.throughput)
                .fold(0.0_f64, f64::max);
            print!("{thpt:>10.3}");
            rows.push(Fig8Row {
                scheme: id.name().to_string(),
                size,
                saturation_throughput: thpt,
            });
        }
        println!();
    }
    // Shape summary.
    for size in sizes {
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.size == size && r.scheme == name)
                .map(|r| r.saturation_throughput)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{size}x{size}: FastPass/SWAP = {:.2} (paper: {})",
            get("FastPass") / get("SWAP"),
            match size {
                4 => "1.17",
                8 => "1.67",
                _ => "1.78",
            }
        );
    }
    let path = emit_json("fig8", &rows).expect("write results");
    println!("JSON written to {}", path.display());
}
