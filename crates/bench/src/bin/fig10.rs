//! Fig. 10: average packet latency and normalized execution time for
//! the application workloads, 8×8 mesh.
//!
//! Configurations as in the paper: EscapeVC/SPIN/SWAP/DRAIN/TFC at
//! VN=6 VC=2; Pitstop at VN=0 VC=2; FastPass at VN=0 with VC=2 and VC=4.
//! Execution time is the cycle count for every core to finish its
//! transaction quota, normalized to EscapeVC. Expected shape (paper):
//! FastPass lowest latency (up to 46% better) and ~6–9% execution-time
//! improvement; FastPass(VC=4) ≥ FastPass(VC=2).

use bench::{emit_json, env_u64, num_jobs, parallel_map, SchemeId};
use noc_sim::Simulation;
use serde::Serialize;
use traffic::AppModel;

#[derive(Serialize)]
struct Fig10Cell {
    app: String,
    scheme: String,
    fp_vcs: usize,
    avg_latency: f64,
    exec_cycles: u64,
    normalized_exec: f64,
}

fn configs() -> Vec<(SchemeId, usize, &'static str)> {
    vec![
        (SchemeId::EscapeVc, 2, "EscapeVC(6VN,2VC)"),
        (SchemeId::Spin, 2, "SPIN(6VN,2VC)"),
        (SchemeId::Swap, 2, "SWAP(6VN,2VC)"),
        (SchemeId::Drain, 2, "DRAIN(6VN,2VC)"),
        (SchemeId::Pitstop, 2, "Pitstop(0VN,2VC)"),
        (SchemeId::Tfc, 2, "TFC(6VN,2VC)"),
        (SchemeId::FastPass, 2, "FastPass(0VN,2VC)"),
        (SchemeId::FastPass, 4, "FastPass(0VN,4VC)"),
    ]
}

fn run_app(
    id: SchemeId,
    fp_vcs: usize,
    app: AppModel,
    size: usize,
    quota: u64,
    max_cycles: u64,
) -> (f64, u64) {
    let cfg = id.sim_config(size, fp_vcs, 13);
    let nodes = cfg.mesh.num_nodes();
    let scheme = id.build(&cfg, 13);
    let workload = app.workload(nodes, Some(quota));
    let mut sim = Simulation::new(cfg, scheme, Box::new(workload));
    let ran = sim.run(max_cycles);
    let lat = sim.core.stats.avg_latency();
    (lat, ran)
}

fn main() {
    bench::serve_client::warn_if_serve_requested("fig10");
    let size = env_u64("FP_SIZE", 8) as usize;
    let quota = env_u64("FP_QUOTA", 60);
    let max_cycles = env_u64("FP_MAXCYCLES", 400_000);
    // One job per (app, config); each builds its own simulation, so the
    // grid fans out across NOC_JOBS workers with results in grid order.
    let grid: Vec<(AppModel, SchemeId, usize, &'static str)> = AppModel::FIG10
        .iter()
        .flat_map(|&app| {
            configs()
                .into_iter()
                .map(move |(id, fp_vcs, label)| (app, id, fp_vcs, label))
        })
        .collect();
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(app, id, fp_vcs, _)| move || run_app(id, fp_vcs, app, size, quota, max_cycles))
        .collect();
    let measured = parallel_map(jobs, num_jobs());
    let mut cells = Vec::new();
    println!("== Fig. 10 — application latency and normalized execution time ==");
    let mut point = grid.iter().zip(measured);
    for app in AppModel::FIG10 {
        println!("\n{app}:");
        println!(
            "  {:<20} {:>10} {:>12} {:>10}",
            "config", "avg lat", "exec cycles", "norm exec"
        );
        let mut base_exec = None;
        for _ in configs() {
            let (&(_, _, fp_vcs, label), (lat, exec)) =
                point.next().expect("one result per (app, config)");
            let base = *base_exec.get_or_insert(exec);
            let norm = exec as f64 / base as f64;
            println!("  {label:<20} {lat:>10.1} {exec:>12} {norm:>10.3}");
            cells.push(Fig10Cell {
                app: app.name().to_string(),
                scheme: label.to_string(),
                fp_vcs,
                avg_latency: lat,
                exec_cycles: exec,
                normalized_exec: norm,
            });
        }
    }
    // Averages across apps (the paper's "Average" group).
    println!("\nAverage across apps:");
    for (_, _, label) in configs() {
        let mine: Vec<&Fig10Cell> = cells.iter().filter(|c| c.scheme == label).collect();
        let lat = mine.iter().map(|c| c.avg_latency).sum::<f64>() / mine.len() as f64;
        let norm = mine.iter().map(|c| c.normalized_exec).sum::<f64>() / mine.len() as f64;
        println!("  {label:<20} avg lat {lat:>8.1}  norm exec {norm:>6.3}");
    }
    let path = emit_json("fig10", &cells).expect("write results");
    println!("JSON written to {}", path.display());
}
