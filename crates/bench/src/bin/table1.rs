//! Table I: qualitative comparison of deadlock-freedom solutions.
//!
//! Regenerated from each scheme's `Scheme::properties()` so the table
//! stays in sync with what the implementations actually do.

use bench::{SchemeId, ALL_SCHEMES};

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        " - "
    }
}

fn main() {
    bench::serve_client::warn_if_serve_requested("table1");
    println!("Table I: Comparison of deadlock freedom solutions");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Scheme",
        "NoDetect",
        "ProtoDF",
        "NetDF",
        "PathDiv",
        "HighThpt",
        "LowPower",
        "Scalable",
        "NoMisrt"
    );
    for id in ALL_SCHEMES {
        // MinBD is not in the paper's Table I but is shown for
        // completeness; the six Table I rows plus TFC/MinBD.
        let cfg = id.sim_config(4, 2, 1);
        let scheme = id.build(&cfg, 1);
        let p = scheme.properties();
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            id.name(),
            tick(p.no_detection),
            tick(p.protocol_deadlock_freedom),
            tick(p.network_deadlock_freedom),
            tick(p.full_path_diversity),
            tick(p.high_throughput),
            tick(p.low_power),
            tick(p.scalable),
            tick(p.no_misrouting),
        );
    }
    // The paper's headline: only FastPass ticks every column.
    let fp_cfg = SchemeId::FastPass.sim_config(4, 2, 1);
    let fp = SchemeId::FastPass.build(&fp_cfg, 1).properties();
    assert!(
        fp.no_detection
            && fp.protocol_deadlock_freedom
            && fp.network_deadlock_freedom
            && fp.full_path_diversity
            && fp.high_throughput
            && fp.low_power
            && fp.scalable
            && fp.no_misrouting
    );
    println!("\nFastPass is the only row with every property (paper's Table I).");
}
