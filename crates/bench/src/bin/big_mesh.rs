//! Big-mesh batched sweep: the 16×16 point matrix behind the `big-mesh`
//! CI job.
//!
//! Runs the same scheme × rate matrix as the `big_mesh_golden` test —
//! FastPass + plain VCT on a 16×16 mesh, uniform traffic, fixed seed —
//! with every point interleaved through
//! [`noc_sim::batch::run_windows_batched`], and prints one summary line
//! per point (delivered/generated counts plus the FNV-1a hash of the
//! fully serialized `NetStats`, the same hash the golden fixture
//! stores). It then re-runs the lowest-rate FastPass point with full
//! tracing and a windowed sampler, writing Chrome-trace / metrics /
//! lifetime / window-series artifacts into the trace directory
//! (default `trace/`, `FP_TRACE_OUT` overrides) for CI to upload.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin big_mesh            # smoke: both schemes, lowest rate
//! cargo run --release -p bench --bin big_mesh -- --full  # full matrix (weekly CI sweep)
//! ```
//!
//! `FP_BIG_MESH_FULL=1` is equivalent to `--full`, mirroring the golden
//! test's scope switch so the CI job can drive both with one env var.

use bench::runner::make_sim;
use bench::{run_traced_point, trace_out_dir, SchemeId, SweepSpec};
use noc_sim::{run_windows_batched, Simulation};
use noc_trace::{TraceConfig, TraceLevel};
use traffic::SyntheticPattern;

// One source of truth with tests/big_mesh_golden.rs: these constants
// must stay in lockstep or the CI job stops exercising the gated
// configuration.
const MESH_SIZE: usize = 16;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 500;
const MEASURE: u64 = 1_500;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];

/// FNV-1a 64-bit (matches `golden_stats` and `big_mesh_golden`).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_on(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn main() {
    let full = std::env::args().skip(1).any(|a| a == "--full") || env_on("FP_BIG_MESH_FULL");
    let points: Vec<(SchemeId, f64)> = if full {
        SCHEMES
            .iter()
            .flat_map(|&id| RATES.iter().map(move |&r| (id, r)))
            .collect()
    } else {
        SCHEMES.iter().map(|&id| (id, RATES[0])).collect()
    };

    let mut sims: Vec<Simulation> = points
        .iter()
        .map(|&(id, rate)| make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED))
        .collect();
    let start = std::time::Instant::now();
    let all = run_windows_batched(&mut sims, WARMUP, MEASURE);
    let elapsed = start.elapsed().as_secs_f64();

    let scope = if full { "full" } else { "smoke" };
    println!(
        "big_mesh: {} {}x{} points ({scope} scope), batched, {:.2}s wall",
        points.len(),
        MESH_SIZE,
        MESH_SIZE,
        elapsed
    );
    for (&(id, rate), stats) in points.iter().zip(&all) {
        let json = serde_json::to_string(stats).expect("NetStats serializes");
        println!(
            "big_mesh: {:>8} r={rate:.2}  delivered={:<6} generated={:<6} cycles={} fnv64={:016x}",
            id.name(),
            stats.delivered(),
            stats.generated,
            stats.cycles,
            fnv1a64(json.as_bytes())
        );
        assert!(
            stats.delivered() > 0,
            "{} @ rate {rate} delivered nothing on the {MESH_SIZE}x{MESH_SIZE} mesh",
            id.name()
        );
    }

    // Artifact pass: the lowest-rate FastPass point, re-run serially
    // with full tracing + windowed telemetry so CI has a 16x16 Chrome
    // trace / metrics / lifetime / window-series bundle to archive.
    let spec = SweepSpec {
        id: SchemeId::FastPass,
        pattern: SyntheticPattern::Uniform,
        rates: vec![RATES[0]],
        size: MESH_SIZE,
        fp_vcs: FP_VCS,
        warmup: WARMUP,
        measure: MEASURE,
        seed: SEED,
    };
    let cfg = TraceConfig {
        level: TraceLevel::Full,
        ..TraceConfig::default()
    };
    let dir = trace_out_dir();
    match run_traced_point(&spec, RATES[0], &cfg, &dir) {
        Ok(paths) => {
            for p in paths {
                println!("big_mesh: wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("big_mesh: writing trace artifacts into {:?}: {e}", dir);
            std::process::exit(1);
        }
    }
}
