//! Traced sweep points: artifact emission and Chrome-trace validation.
//!
//! A traced point re-runs one `(spec, rate)` simulation with a live
//! [`Tracer`] and writes three artifacts per point into a trace
//! directory (default `trace/`, override with `FP_TRACE_OUT`):
//!
//! * `<point>.trace.json` — Chrome `trace_event` JSON, loadable in
//!   Perfetto / `chrome://tracing` (one track per router, one per
//!   FastPass lane endpoint);
//! * `<point>.metrics.json` — the serialized [`MetricsReport`]
//!   (occupancy integrals, per-class inject/eject counts, stall-cause
//!   breakdown, lane-occupancy histogram);
//! * `<point>.lifetimes.txt` — the textual per-packet lifetime report.
//!
//! Traced points never touch the sweep result cache: tracing wants a
//! fresh simulation every time (the cache stores only [`LatencyPoint`]
//! aggregates anyway), and keeping traced runs out of the cache keeps
//! the smoke sweep's hit-count assertions in CI exact.
//!
//! [`check_chrome_trace`] is the validation half — the `trace_check`
//! binary is a thin wrapper over it so CI failures reproduce in a unit
//! test.
//!
//! [`LatencyPoint`]: crate::runner::LatencyPoint

use crate::runner::{make_sim, SweepSpec};
use crate::telemetry::{merge_counter_tracks, windows_json};
use noc_sim::SamplerConfig;
use noc_trace::{chrome_trace_json, packet_lifetimes, TraceConfig, Tracer};
use serde::Content;
use std::path::{Path, PathBuf};

/// Summary of one validated Chrome trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheckSummary {
    /// Total events in the trace array.
    pub events: usize,
    /// Complete ("X") duration events — link/lane traversals.
    pub complete: usize,
    /// Instant ("i") events.
    pub instants: usize,
    /// Metadata ("M") events naming processes/threads.
    pub metadata: usize,
    /// Counter ("C") events — windowed telemetry tracks.
    pub counters: usize,
    /// Regular link-traversal events present (`name == "link"`).
    pub has_regular_link: bool,
    /// Bypass lane-traversal events present (`name == "lane"`).
    pub has_bypass_lane: bool,
}

fn map_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Validates a Chrome `trace_event` JSON document produced by
/// [`chrome_trace_json`] (plus merged telemetry counter tracks): a
/// top-level array whose every element carries a `name`, a known phase
/// (`X`/`i`/`M`/`C`), integral `pid`/`tid`, a timestamp on non-metadata
/// events, a positive duration on complete events, an instant scope on
/// instants, and an `args` object on counters.
///
/// With `require_bypass`, the trace must additionally contain both
/// regular link traversals (`"link"`) and bypass lane traversals
/// (`"lane"`) — the property the whole pipeline exists to show.
///
/// # Errors
///
/// Returns a message naming the first offending event and what is wrong
/// with it.
pub fn check_chrome_trace(json: &str, require_bypass: bool) -> Result<TraceCheckSummary, String> {
    check_chrome_trace_full(json, require_bypass, false)
}

/// [`check_chrome_trace`] with the counter-track requirement exposed:
/// with `require_counters`, the trace must contain at least one counter
/// (`"C"`) event — the CI trace-smoke gate uses this to prove the
/// telemetry merge actually ran.
///
/// # Errors
///
/// Returns a message naming the first offending event and what is wrong
/// with it.
pub fn check_chrome_trace_full(
    json: &str,
    require_bypass: bool,
    require_counters: bool,
) -> Result<TraceCheckSummary, String> {
    let doc: Content = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Content::Seq(events) = doc else {
        return Err("top level must be a JSON array of trace events".to_string());
    };
    let mut summary = TraceCheckSummary {
        events: events.len(),
        complete: 0,
        instants: 0,
        metadata: 0,
        counters: 0,
        has_regular_link: false,
        has_bypass_lane: false,
    };
    for (i, ev) in events.iter().enumerate() {
        let Content::Map(entries) = ev else {
            return Err(format!("event #{i} is not a JSON object"));
        };
        let name = map_get(entries, "name")
            .and_then(Content::as_str)
            .ok_or_else(|| format!("event #{i} has no string `name`"))?;
        let ph = map_get(entries, "ph")
            .and_then(Content::as_str)
            .ok_or_else(|| format!("event #{i} ({name}) has no string `ph`"))?;
        if map_get(entries, "pid").and_then(Content::as_u64).is_none() {
            return Err(format!("event #{i} ({name}) has no integral `pid`"));
        }
        // `tid` is optional only on process-scoped metadata
        // (`process_name` has no thread); everything else needs a track.
        let has_tid = map_get(entries, "tid").and_then(Content::as_u64).is_some();
        let process_scoped = ph == "M" && name == "process_name";
        if !has_tid && !process_scoped {
            return Err(format!("event #{i} ({name}) has no integral `tid`"));
        }
        match ph {
            "M" => summary.metadata += 1,
            "X" | "i" => {
                if map_get(entries, "ts").and_then(Content::as_u64).is_none() {
                    return Err(format!("event #{i} ({name}) has no integral `ts`"));
                }
                if ph == "X" {
                    summary.complete += 1;
                    match map_get(entries, "dur").and_then(Content::as_u64) {
                        Some(d) if d >= 1 => {}
                        _ => return Err(format!("complete event #{i} ({name}) needs `dur` >= 1")),
                    }
                } else {
                    summary.instants += 1;
                    if map_get(entries, "s").and_then(Content::as_str).is_none() {
                        return Err(format!("instant event #{i} ({name}) has no scope `s`"));
                    }
                }
                match name {
                    "link" => summary.has_regular_link = true,
                    "lane" => summary.has_bypass_lane = true,
                    _ => {}
                }
            }
            "C" => {
                summary.counters += 1;
                if map_get(entries, "ts").and_then(Content::as_u64).is_none() {
                    return Err(format!("counter event #{i} ({name}) has no integral `ts`"));
                }
                match map_get(entries, "args") {
                    Some(Content::Map(_)) => {}
                    _ => {
                        return Err(format!(
                            "counter event #{i} ({name}) needs an `args` object of series"
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "event #{i} ({name}) has unknown phase {other:?} (expected X, i, M or C)"
                ))
            }
        }
    }
    if summary.events == summary.metadata {
        return Err("trace holds only metadata — no simulation events recorded".to_string());
    }
    if require_bypass {
        if !summary.has_regular_link {
            return Err("no regular link traversals (`link`) in trace".to_string());
        }
        if !summary.has_bypass_lane {
            return Err(
                "no bypass lane traversals (`lane`) in trace — bypass and regular \
                 traffic must be distinguishable"
                    .to_string(),
            );
        }
    }
    if require_counters && summary.counters == 0 {
        return Err(
            "no counter (`C`) events in trace — telemetry counter tracks were not merged"
                .to_string(),
        );
    }
    Ok(summary)
}

/// Trace output directory: `FP_TRACE_OUT`, default `trace/`.
pub fn trace_out_dir() -> PathBuf {
    PathBuf::from(std::env::var("FP_TRACE_OUT").unwrap_or_else(|_| "trace".to_string()))
}

/// A filesystem-safe stem for one traced point:
/// `<scheme>_<pattern>_<size>x<size>_r<rate>` with `.` → `p`.
pub fn point_stem(spec: &SweepSpec, rate: f64) -> String {
    let raw = format!(
        "{}_{}_{}x{}_r{rate:.3}",
        spec.id.name(),
        spec.pattern.name(),
        spec.size,
        spec.size
    );
    raw.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '-' => c,
            '.' => 'p',
            _ => '-',
        })
        .collect()
}

/// Window size for the traced-point sampler: aim for ~64 windows over
/// the measurement window so the counter tracks have visible shape.
fn sampler_for(measure: u64) -> SamplerConfig {
    SamplerConfig {
        sample_every: (measure / 64).max(1),
        max_windows: 256,
    }
}

/// Runs one `(spec, rate)` point with tracing **and the windowed
/// sampler** enabled, and writes four artifacts into `dir`: the Chrome
/// trace (with telemetry counter tracks merged in), the metrics report,
/// the lifetime report, and the `<point>.windows.json` time series.
/// Returns the paths written (trace JSON first).
///
/// # Errors
///
/// Propagates filesystem errors creating the directory or writing any
/// artifact.
pub fn run_traced_point(
    spec: &SweepSpec,
    rate: f64,
    cfg: &TraceConfig,
    dir: &Path,
) -> std::io::Result<Vec<PathBuf>> {
    let mut sim = make_sim(
        spec.id,
        spec.pattern,
        rate,
        spec.size,
        spec.fp_vcs,
        spec.seed,
    );
    sim.set_trace(cfg);
    sim.set_sampler(&sampler_for(spec.measure));
    sim.run_windows(spec.warmup, spec.measure);
    sim.finish_sampling();
    let stem = point_stem(spec, rate);
    let mut paths = write_artifacts(dir, &stem, sim.tracer())?;
    let sampler = sim.sampler().expect("sampler installed above");
    // Merge the window series into the Chrome trace as counter tracks,
    // and write the raw series alongside for offline plotting.
    let chrome_path = &paths[0];
    let chrome = std::fs::read_to_string(chrome_path)?;
    let merged = merge_counter_tracks(&chrome, sampler).map_err(std::io::Error::other)?;
    std::fs::write(chrome_path, merged)?;
    let windows = dir.join(format!("{stem}.windows.json"));
    std::fs::write(&windows, windows_json(sampler))?;
    paths.push(windows);
    Ok(paths)
}

fn write_artifacts(dir: &Path, stem: &str, tracer: &Tracer) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let io_err = |what: &str| std::io::Error::other(format!("{what} failed to serialize"));
    let chrome = dir.join(format!("{stem}.trace.json"));
    std::fs::write(&chrome, chrome_trace_json(tracer))?;
    let metrics = dir.join(format!("{stem}.metrics.json"));
    let report = serde_json::to_string_pretty(&tracer.metrics_report())
        .map_err(|_| io_err("metrics report"))?;
    std::fs::write(&metrics, report)?;
    let lifetimes = dir.join(format!("{stem}.lifetimes.txt"));
    std::fs::write(&lifetimes, packet_lifetimes(tracer))?;
    Ok(vec![chrome, metrics, lifetimes])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SchemeId;
    use noc_trace::TraceLevel;
    use traffic::SyntheticPattern;

    fn spec() -> SweepSpec {
        SweepSpec {
            id: SchemeId::FastPass,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.05],
            size: 4,
            fp_vcs: 2,
            warmup: 200,
            measure: 800,
            seed: 5,
        }
    }

    #[test]
    fn traced_point_produces_valid_chrome_trace() {
        let dir = std::env::temp_dir().join(format!("fp_trace_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths =
            run_traced_point(&spec(), 0.05, &TraceConfig::full(), &dir).expect("traced run");
        assert_eq!(paths.len(), 4);
        let json = std::fs::read_to_string(&paths[0]).unwrap();
        let summary =
            check_chrome_trace_full(&json, false, true).expect("trace validates with counters");
        assert!(summary.has_regular_link, "uniform load crosses links");
        assert!(summary.metadata > 0, "process/thread names present");
        assert!(summary.counters > 0, "telemetry counter tracks merged in");
        let metrics = std::fs::read_to_string(&paths[1]).unwrap();
        assert!(metrics.contains("stalls"), "metrics report has stall map");
        let lifetimes = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(
            lifetimes.contains("packet P"),
            "lifetime report has packets"
        );
        let windows = std::fs::read_to_string(&paths[3]).unwrap();
        assert!(paths[3].to_string_lossy().ends_with(".windows.json"));
        assert!(windows.contains("\"windows\""), "window series present");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        assert!(check_chrome_trace("not json", false).is_err());
        assert!(
            check_chrome_trace("{\"a\":1}", false).is_err(),
            "top level must be an array"
        );
        assert!(
            check_chrome_trace("[1,2]", false).is_err(),
            "events must be objects"
        );
        let no_phase = r#"[{"name":"x","pid":0,"tid":0}]"#;
        assert!(check_chrome_trace(no_phase, false).is_err());
        let bad_phase = r#"[{"name":"x","ph":"Q","pid":0,"tid":0}]"#;
        assert!(check_chrome_trace(bad_phase, false).is_err());
        let x_without_dur = r#"[{"name":"link","ph":"X","pid":0,"tid":0,"ts":1}]"#;
        assert!(check_chrome_trace(x_without_dur, false).is_err());
        let only_metadata = r#"[{"name":"process_name","ph":"M","pid":0,"tid":0}]"#;
        assert!(check_chrome_trace(only_metadata, false).is_err());
        let counter_without_args = r#"[{"name":"in_flight","ph":"C","pid":2,"tid":0,"ts":1}]"#;
        assert!(check_chrome_trace(counter_without_args, false).is_err());
    }

    #[test]
    fn require_counters_demands_a_counter_track() {
        let no_counters = r#"[{"name":"link","ph":"X","pid":0,"tid":0,"ts":1,"dur":1}]"#;
        assert!(check_chrome_trace_full(no_counters, false, false).is_ok());
        let err = check_chrome_trace_full(no_counters, false, true).unwrap_err();
        assert!(err.contains("counter"), "{err}");
        let with_counter = r#"[
            {"name":"link","ph":"X","pid":0,"tid":0,"ts":1,"dur":1},
            {"name":"in_flight","ph":"C","pid":2,"tid":0,"ts":5,"args":{"network":3}}
        ]"#;
        let s = check_chrome_trace_full(with_counter, false, true).expect("valid");
        assert_eq!(s.counters, 1);
    }

    #[test]
    fn checker_accepts_minimal_valid_trace() {
        let ok = r#"[
            {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"routers"}},
            {"name":"link","ph":"X","pid":0,"tid":3,"ts":10,"dur":1},
            {"name":"inject","ph":"i","pid":0,"tid":3,"ts":9,"s":"t"}
        ]"#;
        let s = check_chrome_trace(ok, false).expect("valid");
        assert_eq!((s.events, s.complete, s.instants, s.metadata), (3, 1, 1, 1));
        assert!(s.has_regular_link && !s.has_bypass_lane);
    }

    #[test]
    fn require_bypass_demands_both_traffic_kinds() {
        let regular_only = r#"[{"name":"link","ph":"X","pid":0,"tid":0,"ts":1,"dur":1}]"#;
        assert!(check_chrome_trace(regular_only, false).is_ok());
        let err = check_chrome_trace(regular_only, true).unwrap_err();
        assert!(err.contains("lane"), "{err}");
        let both = r#"[
            {"name":"link","ph":"X","pid":0,"tid":0,"ts":1,"dur":1},
            {"name":"lane","ph":"X","pid":1,"tid":0,"ts":2,"dur":1}
        ]"#;
        assert!(check_chrome_trace(both, true).is_ok());
    }

    #[test]
    fn counters_level_produces_metrics_and_counter_only_trace() {
        let dir = std::env::temp_dir().join(format!("fp_trace_cnt_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TraceConfig {
            level: TraceLevel::Counters,
            ..TraceConfig::default()
        };
        let paths = run_traced_point(&spec(), 0.05, &cfg, &dir).expect("traced run");
        let json = std::fs::read_to_string(&paths[0]).unwrap();
        // No per-flit events at counters level, but the merged telemetry
        // counter tracks make the trace valid and loadable on their own.
        let s = check_chrome_trace_full(&json, false, true).expect("counters validate");
        assert_eq!(s.complete, 0, "no flit events at counters level");
        assert!(s.counters > 0);
        let metrics = std::fs::read_to_string(&paths[1]).unwrap();
        assert!(metrics.contains("occupancy_integral"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn point_stem_is_filesystem_safe() {
        let s = point_stem(&spec(), 0.05);
        assert_eq!(s, "FastPass_uniform_4x4_r0p050");
        assert!(s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
    }
}
