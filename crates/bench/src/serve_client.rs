//! Client side of the `nocserve` protocol, plus the `--serve` dispatch
//! used by the figure binaries.
//!
//! [`Client`] wraps one Unix-socket connection and speaks the
//! newline-delimited JSON protocol from [`crate::proto`]. The figure
//! binaries call [`run_sweeps`], which routes a spec list either through
//! the local batch executor ([`run_sweep_parallel`]) or — when
//! `--serve[=SOCKET]` is on the command line or `NOC_SERVE` is set —
//! through a running daemon. Both paths return the same
//! [`SweepResult`]s: the daemon computes points with the same simulator
//! entry points and the same cache keys, so the emitted JSON artifacts
//! are bitwise identical (the `serve` CI job diffs them).

use crate::proto::{
    decode_response, encode, FetchedPoint, FlightRecord, MetricsReport, Request, Response,
    StatusReport, WireSpec,
};
use crate::runner::{run_sweep_parallel, SweepOptions, SweepResult, SweepSpec};
use crate::store::GcReport;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// Environment variable naming the daemon socket; doubles as the
/// env-only way to put a binary in serve mode (same effect as
/// `--serve=<path>`).
pub const SOCK_ENV: &str = "NOC_SERVE";

/// Default socket path when serve mode is requested without a path.
pub fn default_socket() -> PathBuf {
    PathBuf::from("results/nocserve.sock")
}

/// How a binary should execute its sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecMode {
    /// In-process batch executor (the default).
    Batch,
    /// Submit to the daemon at this socket.
    Serve(PathBuf),
}

impl ExecMode {
    /// Resolves the execution mode from a binary's argument list and the
    /// environment: `--serve` / `--serve=SOCKET` wins, then a non-empty
    /// [`SOCK_ENV`], else batch. `--serve` without a path uses
    /// [`SOCK_ENV`] or the default socket.
    pub fn from_args<S: AsRef<str>>(args: &[S]) -> ExecMode {
        let env_sock = std::env::var(SOCK_ENV).ok();
        ExecMode::from_parts(args, env_sock.as_deref())
    }

    /// The pure core of [`ExecMode::from_args`], with the environment
    /// passed explicitly (testable without mutating process state).
    fn from_parts<S: AsRef<str>>(args: &[S], env_sock: Option<&str>) -> ExecMode {
        let env_sock = env_sock.filter(|s| !s.is_empty());
        for arg in args {
            let arg = arg.as_ref();
            if arg == "--serve" {
                return ExecMode::Serve(env_sock.map_or_else(default_socket, PathBuf::from));
            }
            if let Some(path) = arg.strip_prefix("--serve=") {
                return ExecMode::Serve(PathBuf::from(path));
            }
        }
        match env_sock {
            Some(sock) => ExecMode::Serve(PathBuf::from(sock)),
            None => ExecMode::Batch,
        }
    }

    /// Resolves from [`std::env::args`].
    pub fn from_env() -> ExecMode {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ExecMode::from_args(&args)
    }
}

/// What the daemon said when it accepted a submit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitReceipt {
    /// Job id on the daemon.
    pub job: u64,
    /// Total points in the job.
    pub points: u64,
    /// Points newly enqueued for simulation.
    pub computed: u64,
    /// Points served from the store or memory.
    pub cached: u64,
    /// Points piggybacked on another job's in-flight work.
    pub deduped: u64,
}

/// One connection to a `nocserve` daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon at `sock`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure (daemon not running, bad path).
    pub fn connect(sock: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(sock)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let mut line = encode(req);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        decode_response(&line)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, String> {
        self.send(req)?;
        self.recv()
    }

    /// Liveness probe; returns the daemon's protocol version.
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn ping(&mut self) -> Result<u32, String> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong { proto } => Ok(proto),
            other => Err(format!("unexpected reply to ping: {other:?}")),
        }
    }

    /// Fetches the daemon's counters and store stats.
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn status(&mut self) -> Result<StatusReport, String> {
        match self.roundtrip(&Request::Status)? {
            Response::Status(report) => Ok(*report),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// Looks up store entries by hex key.
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn fetch(&mut self, keys: Vec<String>) -> Result<Vec<FetchedPoint>, String> {
        match self.roundtrip(&Request::Fetch { keys })? {
            Response::Points { points } => Ok(points),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected reply to fetch: {other:?}")),
        }
    }

    /// Evicts store entries by hex key; returns how many were removed.
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn evict(&mut self, keys: Vec<String>) -> Result<u64, String> {
        match self.roundtrip(&Request::Evict { keys })? {
            Response::Evicted { removed } => Ok(removed),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected reply to evict: {other:?}")),
        }
    }

    /// Runs a store garbage-collection pass on the daemon.
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn gc(&mut self) -> Result<GcReport, String> {
        match self.roundtrip(&Request::Gc)? {
            Response::GcDone(report) => Ok(report),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected reply to gc: {other:?}")),
        }
    }

    /// Fetches the daemon's metrics-registry dump (counters,
    /// histogram percentiles, worker utilization, flight health).
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn metrics(&mut self) -> Result<MetricsReport, String> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics(report) => Ok(*report),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected reply to metrics: {other:?}")),
        }
    }

    /// Subscribes to the live flight-event stream and invokes
    /// `on_event` for each record; the subscription ends when
    /// `on_event` returns `false`, the daemon shuts down, or the
    /// connection drops. The connection is consumed: the daemon serves
    /// nothing else on a watching connection.
    ///
    /// # Errors
    ///
    /// Subscription failures and protocol violations, as readable
    /// strings. A daemon closing the stream (shutdown) is a clean end,
    /// not an error.
    pub fn watch(mut self, mut on_event: impl FnMut(FlightRecord) -> bool) -> Result<(), String> {
        match self.roundtrip(&Request::Watch)? {
            Response::Watching => {}
            Response::Error { message } => return Err(message),
            other => return Err(format!("unexpected reply to watch: {other:?}")),
        }
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("recv failed: {e}"))?;
            if n == 0 {
                return Ok(()); // daemon shut down: clean end of stream
            }
            match decode_response(&line)? {
                Response::Flight(record) => {
                    if !on_event(record) {
                        return Ok(());
                    }
                }
                Response::Error { message } => return Err(message),
                other => return Err(format!("unexpected event while watching: {other:?}")),
            }
        }
    }

    /// Asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// I/O failures and unexpected responses, as readable strings.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }

    /// Submits a sweep job and blocks until its terminal `result`,
    /// invoking `progress(done, total)` on every progress event.
    ///
    /// # Errors
    ///
    /// I/O failures, daemon-side rejections (bad spec, worker failure)
    /// and protocol violations, as readable strings.
    pub fn submit(
        &mut self,
        specs: &[SweepSpec],
        mut progress: impl FnMut(u64, u64),
    ) -> Result<(SubmitReceipt, Vec<SweepResult>), String> {
        let wire: Vec<WireSpec> = specs.iter().map(WireSpec::from_spec).collect();
        self.send(&Request::Submit { specs: wire })?;
        let receipt = match self.recv()? {
            Response::Accepted {
                job,
                points,
                computed,
                cached,
                deduped,
            } => SubmitReceipt {
                job,
                points,
                computed,
                cached,
                deduped,
            },
            Response::Error { message } => return Err(message),
            other => return Err(format!("unexpected reply to submit: {other:?}")),
        };
        loop {
            match self.recv()? {
                Response::Progress { done, total, .. } => progress(done, total),
                Response::Result { sweeps, .. } => return Ok((receipt, sweeps)),
                Response::Error { message } => return Err(message),
                other => return Err(format!("unexpected mid-job event: {other:?}")),
            }
        }
    }
}

/// Runs `specs` through the daemon at `sock`, printing progress to
/// stderr the way the batch executor logs per-point completion.
///
/// # Errors
///
/// Connection and protocol failures, as readable strings.
pub fn run_sweeps_via(sock: &Path, specs: &[SweepSpec]) -> Result<Vec<SweepResult>, String> {
    let mut client = Client::connect(sock)
        .map_err(|e| format!("cannot reach nocserve at {}: {e}", sock.display()))?;
    let mut last = 0u64;
    let (receipt, sweeps) = client.submit(specs, |done, total| {
        if done != last {
            last = done;
            eprintln!("[serve] job {done}/{total} points");
        }
    })?;
    eprintln!(
        "[serve] job {}: {} points ({} computed, {} cached, {} deduped)",
        receipt.job, receipt.points, receipt.computed, receipt.cached, receipt.deduped
    );
    Ok(sweeps)
}

/// The figure binaries' sweep entry point: batch by default, daemon when
/// `--serve` / `NOC_SERVE` asks for it ([`ExecMode::from_env`]).
///
/// Serve mode is explicit opt-in, so an unreachable daemon is an error,
/// not a silent fallback — falling back would make the CI dedup and
/// equivalence assertions vacuous.
pub fn run_sweeps(specs: &[SweepSpec]) -> Vec<SweepResult> {
    match ExecMode::from_env() {
        ExecMode::Batch => run_sweep_parallel(specs, &SweepOptions::from_env()),
        ExecMode::Serve(sock) => match run_sweeps_via(&sock, specs) {
            Ok(sweeps) => sweeps,
            Err(err) => {
                eprintln!("error: {err}");
                std::process::exit(2);
            }
        },
    }
}

/// For binaries whose jobs are not point-addressable (saturation
/// searches, power models, p99 scans): if serve mode was requested,
/// explain why this binary runs its custom jobs locally anyway. Sweeps
/// submitted through the daemon cover only `(spec, rate)` points; these
/// binaries' work units depend on intermediate results, so they cannot
/// be deduplicated by content key yet.
pub fn warn_if_serve_requested(binary: &str) {
    if let ExecMode::Serve(sock) = ExecMode::from_env() {
        eprintln!(
            "[{binary}] note: serve mode ({}) covers rate-sweep points only; \
             this binary's custom jobs run in-process",
            sock.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_parses_serve_flags() {
        let empty: [&str; 0] = [];
        assert_eq!(ExecMode::from_parts(&empty, None), ExecMode::Batch);
        assert_eq!(
            ExecMode::from_parts(&["--trace", "foo"], None),
            ExecMode::Batch
        );
        assert_eq!(
            ExecMode::from_parts(&["--serve=/tmp/x.sock"], None),
            ExecMode::Serve(PathBuf::from("/tmp/x.sock"))
        );
        // Bare --serve: env socket wins, then the default.
        assert_eq!(
            ExecMode::from_parts(&["--serve"], Some("/tmp/env.sock")),
            ExecMode::Serve(PathBuf::from("/tmp/env.sock"))
        );
        assert_eq!(
            ExecMode::from_parts(&["--serve"], Some("")),
            ExecMode::Serve(default_socket())
        );
        assert_eq!(
            ExecMode::from_parts(&["--serve"], None),
            ExecMode::Serve(default_socket())
        );
        // Env alone flips the mode too (how CI drives unmodified argv).
        assert_eq!(
            ExecMode::from_parts(&empty, Some("/tmp/env.sock")),
            ExecMode::Serve(PathBuf::from("/tmp/env.sock"))
        );
        // Explicit flag beats env.
        assert_eq!(
            ExecMode::from_parts(&["--serve=/a"], Some("/b")),
            ExecMode::Serve(PathBuf::from("/a"))
        );
    }

    #[test]
    fn connect_to_missing_socket_is_an_error() {
        let err = Client::connect(Path::new("/nonexistent/nocserve.sock"));
        assert!(err.is_err());
    }
}
