//! Wall-clock phase profiling: the `std::time::Instant` implementation
//! of [`PhaseProbe`].
//!
//! The probe *interface* lives in `noc-sim` (`noc_sim::probe`), which —
//! like every simulation crate — is barred from reading the wall clock
//! by the determinism lint. This module is the other half: a probe that
//! attributes elapsed time to pipeline phases, so `hotpath --phases`
//! can report *where* cycles/sec go instead of just the total.
//!
//! Attribution is **self time**: phases nest (`Eject` inside
//! `SwitchAlloc` inside `SchemeStep`), and each nanosecond lands in the
//! innermost open phase only, so the per-phase numbers sum to the total
//! bracketed time with no double counting. Time outside any phase
//! (loop overhead, `advance_cycle`) is tracked separately as
//! `unattributed`.
//!
//! The accumulator is shared (`Arc<Mutex<...>>`) rather than owned by
//! the boxed probe, so the caller keeps a handle to read results after
//! the run without downcasting the trait object. The mutex is
//! uncontended (one simulation, one thread) — its cost is part of the
//! measured hook overhead, which is fine: phase profiling is a
//! diagnostic mode, never enabled in headline benchmarks.

use noc_sim::{Phase, PhaseProbe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-phase self-time accumulators, indexed by [`Phase::index`].
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    /// Self time per phase, nanoseconds.
    pub nanos: [u64; Phase::COUNT],
    /// `begin` calls per phase.
    pub calls: [u64; Phase::COUNT],
    /// Time inside the outermost brackets not attributed to any phase.
    pub unattributed_nanos: u64,
}

impl PhaseTimes {
    /// Total attributed self time, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `(phase, self_nanos, calls)` rows sorted by descending self time.
    pub fn ranked(&self) -> Vec<(Phase, u64, u64)> {
        let mut rows: Vec<(Phase, u64, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, self.nanos[p.index()], self.calls[p.index()]))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Human-readable per-phase breakdown (one line per phase, largest
    /// first, with percentage of attributed time).
    pub fn report(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = String::new();
        for (p, ns, calls) in self.ranked() {
            out.push_str(&format!(
                "{:>14}  {:>9.1} ms  {:>5.1}%  ({} calls)\n",
                p.label(),
                ns as f64 / 1e6,
                100.0 * ns as f64 / total as f64,
                calls
            ));
        }
        out.push_str(&format!(
            "{:>14}  {:>9.1} ms\n",
            "unattributed",
            self.unattributed_nanos as f64 / 1e6
        ));
        out
    }
}

/// A [`PhaseProbe`] that measures wall-clock self time per phase.
pub struct WallProbe {
    times: Arc<Mutex<PhaseTimes>>,
    /// Open phases, innermost last. Capacity covers the deepest real
    /// nesting (engine → scheme → pipeline stage → eject) with slack.
    stack: Vec<Phase>,
    mark: Instant,
}

impl WallProbe {
    /// Creates a probe and the shared handle its results are read from.
    pub fn new() -> (WallProbe, Arc<Mutex<PhaseTimes>>) {
        let times = Arc::new(Mutex::new(PhaseTimes::default()));
        (WallProbe::sharing(&times), times)
    }

    /// Creates a probe accumulating into an existing handle, so one
    /// accumulator can aggregate phases across many simulations (the
    /// `hotpath --phases` sweep attaches a fresh probe per point).
    pub fn sharing(times: &Arc<Mutex<PhaseTimes>>) -> WallProbe {
        WallProbe {
            times: Arc::clone(times),
            stack: Vec::with_capacity(8),
            mark: Instant::now(),
        }
    }

    fn attribute_since_mark(&mut self, now: Instant) {
        let ns = now.duration_since(self.mark).as_nanos() as u64;
        let mut t = self.times.lock().expect("phase accumulator lock");
        match self.stack.last() {
            Some(&p) => t.nanos[p.index()] += ns,
            None => t.unattributed_nanos += ns,
        }
    }
}

impl PhaseProbe for WallProbe {
    fn begin(&mut self, phase: Phase) {
        let now = Instant::now();
        // Time since the last event belongs to the enclosing phase, or —
        // with no phase open — to the unattributed bucket (advance_cycle,
        // loop overhead, and the gap before the first cycle).
        self.attribute_since_mark(now);
        self.stack.push(phase);
        self.times.lock().expect("phase accumulator lock").calls[phase.index()] += 1;
        self.mark = now;
    }

    fn end(&mut self, phase: Phase) {
        let now = Instant::now();
        self.attribute_since_mark(now);
        let popped = self.stack.pop();
        debug_assert_eq!(popped, Some(phase), "unbalanced phase end");
        let _ = phase;
        self.mark = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_time_attribution_with_nesting() {
        let (mut probe, times) = WallProbe::new();
        let spin = || {
            let t = Instant::now();
            while t.elapsed().as_micros() < 200 {}
        };
        probe.begin(Phase::SchemeStep);
        spin(); // -> SchemeStep
        probe.begin(Phase::SwitchAlloc);
        spin(); // -> SwitchAlloc
        probe.begin(Phase::Eject);
        spin(); // -> Eject
        probe.end(Phase::Eject);
        probe.end(Phase::SwitchAlloc);
        spin(); // -> SchemeStep again
        probe.end(Phase::SchemeStep);
        let t = times.lock().expect("lock");
        assert!(t.nanos[Phase::SchemeStep.index()] >= 2 * 150_000);
        assert!(t.nanos[Phase::SwitchAlloc.index()] >= 150_000);
        assert!(t.nanos[Phase::Eject.index()] >= 150_000);
        assert_eq!(t.calls[Phase::SchemeStep.index()], 1);
        assert_eq!(t.calls[Phase::Eject.index()], 1);
        // Ranked rows cover every phase exactly once.
        assert_eq!(t.ranked().len(), Phase::COUNT);
        let report = t.report();
        assert!(report.contains("scheme_step"), "{report}");
        assert!(report.contains("unattributed"), "{report}");
    }

    #[test]
    fn probe_profiles_a_real_simulation() {
        use crate::runner::make_sim;
        use crate::SchemeId;
        use traffic::SyntheticPattern;

        let (probe, times) = WallProbe::new();
        let mut sim = make_sim(SchemeId::FastPass, SyntheticPattern::Uniform, 0.05, 4, 2, 5);
        sim.set_probe(Box::new(probe));
        sim.run_windows(200, 800);
        let t = times.lock().expect("lock");
        assert_eq!(t.calls[Phase::WorkloadTick.index()], 1_000);
        assert_eq!(t.calls[Phase::SchemeStep.index()], 1_000);
        assert!(
            t.total_nanos() > 0,
            "a real run must attribute nonzero time"
        );
    }
}
