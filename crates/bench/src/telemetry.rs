//! Window-series exporters: JSON time series, ASCII sparklines, and
//! Chrome trace counter tracks.
//!
//! The sampler (`noc_sim::sampler`) records raw [`WindowSample`]s; this
//! module turns a finished series into artifacts:
//!
//! * [`windows_json`] — a self-describing JSON document (one object per
//!   window) for offline plotting, written as `<point>.windows.json`
//!   next to the PR 4 trace artifacts;
//! * [`sparkline`] / [`series_summary`] — Unicode sparklines printed by
//!   `smoke` and `hotpath`, a zero-dependency glance at congestion
//!   onset;
//! * [`counter_events`] / [`merge_counter_tracks`] — Chrome
//!   `trace_event` counter (`"ph":"C"`) events merged into the Perfetto
//!   files, so time-series metrics render as counter tracks above the
//!   per-router flit tracks.

use noc_sim::{Sampler, WindowSample};
use noc_trace::StallCause;
use serde::Content;

/// Process id used for telemetry counter tracks in Chrome traces
/// (routers are pid 0, FastPass lanes pid 1 — see `noc_trace::chrome`).
pub const PID_TELEMETRY: u64 = 2;

fn u(v: u64) -> Content {
    Content::U128(v as u128)
}

fn s(v: &str) -> Content {
    Content::Str(v.to_string())
}

/// One window as an ordered JSON object.
fn window_content(w: &WindowSample) -> Content {
    let stall_map: Vec<(String, Content)> = StallCause::ALL
        .iter()
        .map(|&c| (c.label().to_string(), u(w.stalls[c.index()])))
        .collect();
    Content::Map(vec![
        ("start_cycle".to_string(), u(w.start_cycle)),
        ("end_cycle".to_string(), u(w.end_cycle)),
        ("delivered".to_string(), u(w.delivered)),
        ("delivered_fastpass".to_string(), u(w.delivered_fastpass)),
        ("flits_delivered".to_string(), u(w.flits_delivered)),
        ("generated".to_string(), u(w.generated)),
        ("dropped".to_string(), u(w.dropped)),
        ("rejections".to_string(), u(w.rejections)),
        ("deflections".to_string(), u(w.deflections)),
        ("latency_count".to_string(), u(w.latency_count)),
        ("latency_sum".to_string(), u(w.latency_sum)),
        (
            "mean_latency".to_string(),
            match w.mean_latency() {
                Some(m) => Content::F64(m),
                None => Content::Null,
            },
        ),
        (
            "in_flight".to_string(),
            Content::Seq(w.in_flight.iter().map(|&v| u(v)).collect()),
        ),
        ("overlay_packets".to_string(), u(w.overlay_packets)),
        ("occupied_vcs".to_string(), u(w.occupied_vcs)),
        ("ni_source".to_string(), u(w.ni_source)),
        ("ni_inj".to_string(), u(w.ni_inj)),
        ("ni_ej".to_string(), u(w.ni_ej)),
        ("ni_regen".to_string(), u(w.ni_regen)),
        ("stalls".to_string(), Content::Map(stall_map)),
        ("link_flits_regular".to_string(), u(w.link_flits_regular)),
        ("link_flits_bypass".to_string(), u(w.link_flits_bypass)),
        ("bypass_launches".to_string(), u(w.bypass_launches)),
        ("occupancy_integral".to_string(), u(w.occupancy_integral)),
    ])
}

/// Serializes a sampler's full series as a pretty-printed JSON document:
/// `{"sample_every", "dropped_windows", "windows": [...]}`.
pub fn windows_json(sampler: &Sampler) -> String {
    let doc = Content::Map(vec![
        ("sample_every".to_string(), u(sampler.config().sample_every)),
        ("dropped_windows".to_string(), u(sampler.dropped_windows())),
        (
            "windows".to_string(),
            Content::Seq(sampler.windows().iter().map(window_content).collect()),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
}

/// Renders values as a Unicode sparkline (`▁▂▃▄▅▆▇█`), scaled to the
/// series maximum. Empty input renders as an empty string; an all-zero
/// series renders as all-`▁`.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || !v.is_finite() || v <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * 8.0).ceil() as usize;
                BARS[idx.clamp(1, 8) - 1]
            }
        })
        .collect()
}

/// A multi-line sparkline summary of the headline window series:
/// delivered/window, mean latency, in-flight packets, and (when tracing
/// counters were live) stall cycles.
pub fn series_summary(sampler: &Sampler) -> String {
    let ws = sampler.windows();
    if ws.is_empty() {
        return "telemetry: no windows recorded".to_string();
    }
    let line = |label: &str, values: Vec<f64>, last: String| {
        format!("{label:>12} {} {last}\n", sparkline(&values))
    };
    let mut out = String::new();
    out.push_str(&format!(
        "telemetry: {} windows x {} cycles{}\n",
        ws.len(),
        sampler.config().sample_every,
        if sampler.dropped_windows() > 0 {
            format!(" ({} dropped)", sampler.dropped_windows())
        } else {
            String::new()
        }
    ));
    let delivered: Vec<f64> = ws.iter().map(|w| w.delivered as f64).collect();
    let total_delivered: u64 = ws.iter().map(|w| w.delivered).sum();
    out.push_str(&line(
        "delivered",
        delivered,
        format!("total {total_delivered}"),
    ));
    let latency: Vec<f64> = ws.iter().map(|w| w.mean_latency().unwrap_or(0.0)).collect();
    let last_lat = ws
        .iter()
        .rev()
        .find_map(|w| w.mean_latency())
        .unwrap_or(0.0);
    out.push_str(&line("latency", latency, format!("last {last_lat:.1} cyc")));
    let in_flight: Vec<f64> = ws.iter().map(|w| w.in_flight_total() as f64).collect();
    let max_in_flight = ws.iter().map(|w| w.in_flight_total()).max().unwrap_or(0);
    out.push_str(&line(
        "in_flight",
        in_flight,
        format!("peak {max_in_flight}"),
    ));
    let total_stalls: u64 = ws.iter().map(|w| w.total_stalls()).sum();
    if total_stalls > 0 {
        let stalls: Vec<f64> = ws.iter().map(|w| w.total_stalls() as f64).collect();
        out.push_str(&line("stalls", stalls, format!("total {total_stalls}")));
    }
    out
}

/// Chrome `trace_event` counter events (`"ph":"C"`) for the series, one
/// counter sample per window per track, under [`PID_TELEMETRY`].
pub fn counter_events(sampler: &Sampler) -> Vec<Content> {
    let mut out = Vec::new();
    if sampler.windows().is_empty() {
        return out;
    }
    out.push(Content::Map(vec![
        ("name".to_string(), s("process_name")),
        ("ph".to_string(), s("M")),
        ("pid".to_string(), u(PID_TELEMETRY)),
        (
            "args".to_string(),
            Content::Map(vec![("name".to_string(), s("telemetry (windowed)"))]),
        ),
    ]));
    let counter = |name: &str, ts: u64, args: Vec<(String, Content)>| {
        Content::Map(vec![
            ("name".to_string(), s(name)),
            ("ph".to_string(), s("C")),
            ("ts".to_string(), u(ts)),
            ("pid".to_string(), u(PID_TELEMETRY)),
            ("tid".to_string(), u(0)),
            ("args".to_string(), Content::Map(args)),
        ])
    };
    for w in sampler.windows() {
        let ts = w.end_cycle;
        out.push(counter(
            "delivered/window",
            ts,
            vec![
                ("regular".to_string(), u(w.delivered - w.delivered_fastpass)),
                ("fastpass".to_string(), u(w.delivered_fastpass)),
            ],
        ));
        out.push(counter(
            "in_flight",
            ts,
            vec![
                ("network".to_string(), u(w.in_flight_total())),
                ("overlay".to_string(), u(w.overlay_packets)),
            ],
        ));
        out.push(counter(
            "occupied_vcs",
            ts,
            vec![("vcs".to_string(), u(w.occupied_vcs))],
        ));
        out.push(counter(
            "ni_queues",
            ts,
            vec![
                ("source".to_string(), u(w.ni_source)),
                ("inj".to_string(), u(w.ni_inj)),
                ("ej".to_string(), u(w.ni_ej)),
            ],
        ));
        if w.total_stalls() > 0 {
            out.push(counter(
                "stalls/window",
                ts,
                StallCause::ALL
                    .iter()
                    .map(|&c| (c.label().to_string(), u(w.stalls[c.index()])))
                    .collect(),
            ));
        }
        if w.link_flits_regular + w.link_flits_bypass > 0 {
            out.push(counter(
                "link_flits/window",
                ts,
                vec![
                    ("regular".to_string(), u(w.link_flits_regular)),
                    ("bypass".to_string(), u(w.link_flits_bypass)),
                ],
            ));
        }
    }
    out
}

/// Merges the sampler's counter tracks into an existing Chrome trace
/// JSON document (a top-level event array, as produced by
/// `noc_trace::chrome_trace_json`). Returns the merged document.
///
/// # Errors
///
/// Returns a message if `chrome_json` is not a top-level JSON array.
pub fn merge_counter_tracks(chrome_json: &str, sampler: &Sampler) -> Result<String, String> {
    let doc: Content =
        serde_json::from_str(chrome_json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Content::Seq(mut events) = doc else {
        return Err("top level must be a JSON array of trace events".to_string());
    };
    events.extend(counter_events(sampler));
    serde_json::to_string_pretty(&Content::Seq(events)).map_err(|e| format!("serialize: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::SamplerConfig;

    /// Builds a sampler with real recorded windows by running a short
    /// simulation (the sampler's fields are crate-private to noc-sim, so
    /// fixtures are made the honest way).
    fn sampled_run(rate: f64, trace: bool) -> noc_sim::Simulation {
        use crate::runner::make_sim;
        let mut sim = make_sim(
            crate::SchemeId::FastPass,
            traffic::SyntheticPattern::Uniform,
            rate,
            4,
            2,
            5,
        );
        if trace {
            sim.set_trace(&noc_trace::TraceConfig::counters());
        }
        sim.set_sampler(&SamplerConfig {
            sample_every: 100,
            max_windows: 64,
        });
        sim.run(1_000);
        sim.finish_sampling();
        sim
    }

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        let line = sparkline(&[1.0, 4.0, 8.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        assert_eq!(sparkline(&[f64::NAN, 1.0]).chars().next(), Some('▁'));
    }

    #[test]
    fn windows_json_is_valid_and_complete() {
        let sim = sampled_run(0.1, false);
        let sampler = sim.sampler().expect("sampler installed");
        let json = windows_json(sampler);
        let doc: Content = serde_json::from_str(&json).expect("valid JSON");
        let map = doc.as_map().expect("object");
        let windows = serde::field(map, "windows")
            .expect("windows field")
            .as_seq()
            .expect("array")
            .len();
        assert_eq!(windows, sampler.windows().len());
        assert!(windows == 10, "1000 cycles / 100 = {windows} windows");
        assert!(json.contains("\"mean_latency\""));
        assert!(json.contains("\"occupied_vcs\""));
    }

    #[test]
    fn series_summary_prints_sparklines() {
        let sim = sampled_run(0.1, false);
        let text = series_summary(sim.sampler().expect("sampler"));
        assert!(text.contains("delivered"), "{text}");
        assert!(text.contains("in_flight"), "{text}");
        assert!(text.contains('▁') || text.contains('█'), "{text}");
    }

    #[test]
    fn counter_events_only_emit_traced_tracks_when_live() {
        let untraced = sampled_run(0.1, false);
        let evs = counter_events(untraced.sampler().expect("sampler"));
        let names: Vec<String> = evs
            .iter()
            .filter_map(|e| {
                e.as_map()
                    .and_then(|m| serde::field(m, "name").ok())
                    .and_then(Content::as_str)
                    .map(str::to_string)
            })
            .collect();
        assert!(names.iter().any(|n| n == "delivered/window"));
        assert!(
            !names.iter().any(|n| n == "stalls/window"),
            "stall counters need tracing counters on"
        );
        let traced = sampled_run(0.3, true);
        let evs = counter_events(traced.sampler().expect("sampler"));
        let names: Vec<String> = evs
            .iter()
            .filter_map(|e| {
                e.as_map()
                    .and_then(|m| serde::field(m, "name").ok())
                    .and_then(Content::as_str)
                    .map(str::to_string)
            })
            .collect();
        assert!(
            names.iter().any(|n| n == "stalls/window"),
            "high load with counters must stall somewhere: {names:?}"
        );
    }

    #[test]
    fn merge_appends_counters_to_a_chrome_trace() {
        let sim = sampled_run(0.1, false);
        let sampler = sim.sampler().expect("sampler");
        let base = r#"[{"name":"link","ph":"X","pid":0,"tid":0,"ts":1,"dur":1}]"#;
        let merged = merge_counter_tracks(base, sampler).expect("merges");
        assert!(merged.contains("\"ph\": \"C\""), "{merged}");
        assert!(merged.contains("delivered/window"));
        assert!(merge_counter_tracks("{}", sampler).is_err());
    }
}
