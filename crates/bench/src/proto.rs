//! The `nocserve` wire protocol: newline-delimited JSON over a local
//! socket.
//!
//! Every message is one JSON object on one line. Requests carry a
//! `"cmd"` tag, responses an `"event"` tag; unknown tags and malformed
//! lines are answered with an `"error"` event and the connection stays
//! usable. A `submit` request is the only one answered by *multiple*
//! lines: `accepted`, then a `progress` stream, then one terminal
//! `result` (or `error`).
//!
//! ```text
//! → {"cmd":"submit","specs":[{"scheme":"FastPass","pattern":"uniform", …}]}
//! ← {"event":"accepted","job":1,"points":6,"computed":4,"cached":1,"deduped":1}
//! ← {"event":"progress","job":1,"done":5,"total":6}
//! ← {"event":"result","job":1,"sweeps":[…]}
//! ```
//!
//! The types here are shared verbatim by the daemon (`noc-serve`), the
//! `nocctl` CLI and the figure binaries' `--serve` mode, so the two
//! sides cannot drift. Sweep specs travel as [`WireSpec`] — scheme and
//! pattern by display name — and results as the *same*
//! [`SweepResult`]/[`LatencyPoint`] structs the batch executor emits,
//! which is what makes the daemon's output bitwise-comparable to batch
//! JSON artifacts.
//!
//! The vendored serde shim derives only structs and unit enums, so the
//! tagged [`Request`]/[`Response`] unions implement
//! `Serialize`/`Deserialize` by hand over the shim's [`Content`] tree.

use crate::runner::{LatencyPoint, SweepResult, SweepSpec};
use crate::store::{GcReport, StoreStats};
use crate::SchemeId;
use serde::{field, Content, DeError, Deserialize, Serialize};
use traffic::SyntheticPattern;

/// Wire protocol version, echoed in `pong` and `status` so clients can
/// detect a daemon speaking a different generation.
pub const PROTO_VERSION: u32 = 1;

/// One sweep spec as it travels on the wire: scheme and pattern by
/// display name, everything else verbatim from [`SweepSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpec {
    /// Scheme display name ([`SchemeId::name`], case-insensitive).
    pub scheme: String,
    /// Pattern display name ([`SyntheticPattern::name`], case-insensitive).
    pub pattern: String,
    /// Injection rates, in output order.
    pub rates: Vec<f64>,
    /// Mesh edge length.
    pub size: u64,
    /// FastPass VCs per input buffer.
    pub fp_vcs: u64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl WireSpec {
    /// Encodes a runner spec for the wire.
    pub fn from_spec(spec: &SweepSpec) -> WireSpec {
        WireSpec {
            scheme: spec.id.name().to_string(),
            pattern: spec.pattern.name().to_string(),
            rates: spec.rates.clone(),
            size: spec.size as u64,
            fp_vcs: spec.fp_vcs as u64,
            warmup: spec.warmup,
            measure: spec.measure,
            seed: spec.seed,
        }
    }

    /// Decodes back into a runner spec, validating every axis. The
    /// bounds are sanity limits for a *local* trusted service: they
    /// exist to turn typos into readable errors, not to sandbox.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid axis.
    pub fn to_spec(&self) -> Result<SweepSpec, String> {
        let id = SchemeId::parse(&self.scheme)
            .ok_or_else(|| format!("unknown scheme `{}`", self.scheme))?;
        let pattern = SyntheticPattern::from_name(&self.pattern)
            .ok_or_else(|| format!("unknown pattern `{}`", self.pattern))?;
        if self.rates.is_empty() {
            return Err("spec has no rates".to_string());
        }
        if let Some(bad) = self
            .rates
            .iter()
            .find(|r| !r.is_finite() || **r <= 0.0 || **r > 1.0)
        {
            return Err(format!("rate {bad} outside (0, 1]"));
        }
        if !(2..=64).contains(&self.size) {
            return Err(format!("mesh size {} outside 2..=64", self.size));
        }
        if !(1..=8).contains(&self.fp_vcs) {
            return Err(format!("fp_vcs {} outside 1..=8", self.fp_vcs));
        }
        if self.measure == 0 {
            return Err("measure window must be at least 1 cycle".to_string());
        }
        Ok(SweepSpec {
            id,
            pattern,
            rates: self.rates.clone(),
            size: self.size as usize,
            fp_vcs: self.fp_vcs as usize,
            warmup: self.warmup,
            measure: self.measure,
            seed: self.seed,
        })
    }
}

/// A client request: one line, tagged by `"cmd"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Daemon counters and store stats; answered with [`Response::Status`].
    Status,
    /// A sweep job; answered with accepted/progress/result stream.
    Submit {
        /// The sweeps to resolve.
        specs: Vec<WireSpec>,
    },
    /// Point lookup by store key (16-hex-digit, as printed by
    /// [`crate::store::format_key`]); answered with [`Response::Points`].
    Fetch {
        /// Keys to look up.
        keys: Vec<String>,
    },
    /// Drop store entries by key; answered with [`Response::Evicted`].
    Evict {
        /// Keys to drop.
        keys: Vec<String>,
    },
    /// Run a store garbage-collection pass; answered with
    /// [`Response::GcDone`].
    Gc,
    /// Stop the daemon after answering [`Response::Bye`].
    Shutdown,
}

impl Serialize for Request {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = Vec::new();
        let cmd = match self {
            Request::Ping => "ping",
            Request::Status => "status",
            Request::Submit { .. } => "submit",
            Request::Fetch { .. } => "fetch",
            Request::Evict { .. } => "evict",
            Request::Gc => "gc",
            Request::Shutdown => "shutdown",
        };
        map.push(("cmd".to_string(), Content::Str(cmd.to_string())));
        match self {
            Request::Submit { specs } => map.push(("specs".to_string(), specs.to_content())),
            Request::Fetch { keys } | Request::Evict { keys } => {
                map.push(("keys".to_string(), keys.to_content()));
            }
            _ => {}
        }
        Content::Map(map)
    }
}

impl Deserialize for Request {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("request must be a JSON object".to_string()))?;
        let cmd = field(map, "cmd")?
            .as_str()
            .ok_or_else(|| DeError("`cmd` must be a string".to_string()))?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "submit" => Ok(Request::Submit {
                specs: Vec::<WireSpec>::from_content(field(map, "specs")?)?,
            }),
            "fetch" => Ok(Request::Fetch {
                keys: Vec::<String>::from_content(field(map, "keys")?)?,
            }),
            "evict" => Ok(Request::Evict {
                keys: Vec::<String>::from_content(field(map, "keys")?)?,
            }),
            "gc" => Ok(Request::Gc),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(DeError(format!("unknown cmd `{other}`"))),
        }
    }
}

/// Daemon counters as reported by [`Request::Status`] — the CI `serve`
/// job's dedup proof reads `points_computed` and the hit counters out
/// of this JSON (`serve-summary.json`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Wire protocol version.
    pub proto: u32,
    /// Store schema version in effect.
    pub schema: u32,
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (well-formed lines).
    pub requests: u64,
    /// Malformed or unparseable request lines.
    pub bad_requests: u64,
    /// Submit requests accepted.
    pub jobs_submitted: u64,
    /// Submit requests fully answered.
    pub jobs_completed: u64,
    /// Points requested across all jobs (with multiplicity).
    pub points_requested: u64,
    /// Points actually simulated by the worker pool.
    pub points_computed: u64,
    /// Points that failed (a worker panicked on them).
    pub points_failed: u64,
    /// Points served from the on-disk store.
    pub store_hits: u64,
    /// Points served from the in-memory results map.
    pub memory_hits: u64,
    /// Points deduplicated onto another job's in-flight computation.
    pub dedup_waits: u64,
    /// Store entries evicted via `evict`.
    pub evictions: u64,
    /// Points queued but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Points currently being simulated.
    pub inflight: u64,
    /// On-disk store size.
    pub store: StoreStats,
    /// Store directory (diagnostics).
    pub store_dir: String,
}

/// One `fetch` answer: the key, whether the store had it, and the point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchedPoint {
    /// The requested key.
    pub key: String,
    /// Whether an entry was found.
    pub found: bool,
    /// The stored point, when found.
    pub point: Option<LatencyPoint>,
}

/// A daemon response line, tagged by `"event"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong {
        /// Wire protocol version the daemon speaks.
        proto: u32,
    },
    /// A submit was parsed and enqueued.
    Accepted {
        /// Job id, unique within this daemon.
        job: u64,
        /// Total points in the job.
        points: u64,
        /// Points this job newly enqueued for computation.
        computed: u64,
        /// Points served from the store or the in-memory results map.
        cached: u64,
        /// Points already in flight for another job (deduplicated).
        deduped: u64,
    },
    /// Per-job progress; sent whenever the done count advances.
    Progress {
        /// Job id.
        job: u64,
        /// Points resolved so far.
        done: u64,
        /// Total points in the job.
        total: u64,
    },
    /// Terminal answer to a submit: the assembled sweeps, point order
    /// matching the request's spec/rate order.
    Result {
        /// Job id.
        job: u64,
        /// One sweep per submitted spec.
        sweeps: Vec<SweepResult>,
    },
    /// Daemon counters.
    Status(Box<StatusReport>),
    /// Fetch answers, in request key order.
    Points {
        /// One entry per requested key.
        points: Vec<FetchedPoint>,
    },
    /// Evict outcome.
    Evicted {
        /// Entries actually removed.
        removed: u64,
    },
    /// Garbage-collection outcome.
    GcDone(GcReport),
    /// The request could not be served; the connection stays open.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Shutdown acknowledged; the daemon is stopping.
    Bye,
}

impl Serialize for Response {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = Vec::new();
        let tag = match self {
            Response::Pong { .. } => "pong",
            Response::Accepted { .. } => "accepted",
            Response::Progress { .. } => "progress",
            Response::Result { .. } => "result",
            Response::Status(_) => "status",
            Response::Points { .. } => "points",
            Response::Evicted { .. } => "evicted",
            Response::GcDone(_) => "gc",
            Response::Error { .. } => "error",
            Response::Bye => "bye",
        };
        map.push(("event".to_string(), Content::Str(tag.to_string())));
        match self {
            Response::Pong { proto } => map.push(("proto".to_string(), proto.to_content())),
            Response::Accepted {
                job,
                points,
                computed,
                cached,
                deduped,
            } => {
                map.push(("job".to_string(), job.to_content()));
                map.push(("points".to_string(), points.to_content()));
                map.push(("computed".to_string(), computed.to_content()));
                map.push(("cached".to_string(), cached.to_content()));
                map.push(("deduped".to_string(), deduped.to_content()));
            }
            Response::Progress { job, done, total } => {
                map.push(("job".to_string(), job.to_content()));
                map.push(("done".to_string(), done.to_content()));
                map.push(("total".to_string(), total.to_content()));
            }
            Response::Result { job, sweeps } => {
                map.push(("job".to_string(), job.to_content()));
                map.push(("sweeps".to_string(), sweeps.to_content()));
            }
            Response::Status(report) => map.push(("status".to_string(), report.to_content())),
            Response::Points { points } => map.push(("points".to_string(), points.to_content())),
            Response::Evicted { removed } => {
                map.push(("removed".to_string(), removed.to_content()));
            }
            Response::GcDone(report) => map.push(("report".to_string(), report.to_content())),
            Response::Error { message } => {
                map.push(("message".to_string(), message.to_content()));
            }
            Response::Bye => {}
        }
        Content::Map(map)
    }
}

impl Deserialize for Response {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("response must be a JSON object".to_string()))?;
        let tag = field(map, "event")?
            .as_str()
            .ok_or_else(|| DeError("`event` must be a string".to_string()))?;
        let u = |name: &str| -> Result<u64, DeError> { u64::from_content(field(map, name)?) };
        match tag {
            "pong" => Ok(Response::Pong {
                proto: u32::from_content(field(map, "proto")?)?,
            }),
            "accepted" => Ok(Response::Accepted {
                job: u("job")?,
                points: u("points")?,
                computed: u("computed")?,
                cached: u("cached")?,
                deduped: u("deduped")?,
            }),
            "progress" => Ok(Response::Progress {
                job: u("job")?,
                done: u("done")?,
                total: u("total")?,
            }),
            "result" => Ok(Response::Result {
                job: u("job")?,
                sweeps: Vec::<SweepResult>::from_content(field(map, "sweeps")?)?,
            }),
            "status" => Ok(Response::Status(Box::new(StatusReport::from_content(
                field(map, "status")?,
            )?))),
            "points" => Ok(Response::Points {
                points: Vec::<FetchedPoint>::from_content(field(map, "points")?)?,
            }),
            "evicted" => Ok(Response::Evicted {
                removed: u("removed")?,
            }),
            "gc" => Ok(Response::GcDone(GcReport::from_content(field(
                map, "report",
            )?)?)),
            "error" => Ok(Response::Error {
                message: String::from_content(field(map, "message")?)?,
            }),
            "bye" => Ok(Response::Bye),
            other => Err(DeError(format!("unknown event `{other}`"))),
        }
    }
}

/// Encodes a message as one compact JSON line (no trailing newline —
/// the transport appends it).
pub fn encode<T: Serialize>(msg: &T) -> String {
    serde_json::to_string(msg).expect("protocol messages always serialize")
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a human-readable description of the parse failure, suitable
/// for echoing back in an `error` event.
pub fn decode_request(line: &str) -> Result<Request, String> {
    serde_json::from_str::<Request>(line.trim()).map_err(|e| e.to_string())
}

/// Decodes one response line.
///
/// # Errors
///
/// Returns a human-readable description of the parse failure.
pub fn decode_response(line: &str) -> Result<Response, String> {
    serde_json::from_str::<Response>(line.trim()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            id: SchemeId::FastPass,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.02, 0.05],
            size: 4,
            fp_vcs: 2,
            warmup: 100,
            measure: 300,
            seed: 5,
        }
    }

    #[test]
    fn wire_spec_round_trips_through_names() {
        let original = spec();
        let wire = WireSpec::from_spec(&original);
        let back = wire.to_spec().expect("valid spec");
        assert_eq!(back.id, original.id);
        assert_eq!(back.pattern, original.pattern);
        assert_eq!(back.rates, original.rates);
        assert_eq!(
            (back.size, back.fp_vcs, back.warmup, back.measure, back.seed),
            (
                original.size,
                original.fp_vcs,
                original.warmup,
                original.measure,
                original.seed
            )
        );
    }

    #[test]
    fn wire_spec_rejects_bad_axes() {
        let good = WireSpec::from_spec(&spec());
        let cases: Vec<(WireSpec, &str)> = vec![
            (
                WireSpec {
                    scheme: "NoSuchScheme".into(),
                    ..good.clone()
                },
                "scheme",
            ),
            (
                WireSpec {
                    pattern: "NoSuchPattern".into(),
                    ..good.clone()
                },
                "pattern",
            ),
            (
                WireSpec {
                    rates: vec![],
                    ..good.clone()
                },
                "rates",
            ),
            (
                WireSpec {
                    rates: vec![-0.1],
                    ..good.clone()
                },
                "rate",
            ),
            (
                WireSpec {
                    size: 1,
                    ..good.clone()
                },
                "size",
            ),
            (
                WireSpec {
                    fp_vcs: 0,
                    ..good.clone()
                },
                "fp_vcs",
            ),
            (
                WireSpec {
                    measure: 0,
                    ..good.clone()
                },
                "measure",
            ),
        ];
        for (bad, what) in cases {
            assert!(bad.to_spec().is_err(), "{what} should be rejected");
        }
    }

    #[test]
    fn scheme_and_pattern_names_parse_case_insensitively() {
        assert_eq!(SchemeId::parse("fastpass"), Some(SchemeId::FastPass));
        assert_eq!(SchemeId::parse("VCT-XY"), Some(SchemeId::Vct));
        assert_eq!(SchemeId::parse("bogus"), None);
        assert_eq!(
            SyntheticPattern::from_name("Transpose"),
            Some(SyntheticPattern::Transpose)
        );
        assert_eq!(SyntheticPattern::from_name("bogus"), None);
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Status,
            Request::Submit {
                specs: vec![WireSpec::from_spec(&spec())],
            },
            Request::Fetch {
                keys: vec!["00000000000000ff".to_string()],
            },
            Request::Evict {
                keys: vec!["00000000000000ff".to_string()],
            },
            Request::Gc,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode(&req);
            assert!(!line.contains('\n'), "one line per message: {line}");
            let back = decode_request(&line).expect("round trip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong {
                proto: PROTO_VERSION,
            },
            Response::Accepted {
                job: 3,
                points: 6,
                computed: 4,
                cached: 1,
                deduped: 1,
            },
            Response::Progress {
                job: 3,
                done: 5,
                total: 6,
            },
            Response::Result {
                job: 3,
                sweeps: vec![SweepResult {
                    scheme: "FastPass".into(),
                    pattern: "uniform".into(),
                    size: 4,
                    points: vec![],
                }],
            },
            Response::Status(Box::new(StatusReport {
                proto: PROTO_VERSION,
                points_computed: 6,
                ..StatusReport::default()
            })),
            Response::Points {
                points: vec![FetchedPoint {
                    key: "00000000000000ff".into(),
                    found: false,
                    point: None,
                }],
            },
            Response::Evicted { removed: 2 },
            Response::GcDone(GcReport::default()),
            Response::Error {
                message: "nope".into(),
            },
            Response::Bye,
        ];
        for resp in resps {
            let line = encode(&resp);
            assert!(!line.contains('\n'), "one line per message: {line}");
            let back = decode_response(&line).expect("round trip");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_lines_decode_to_errors() {
        assert!(decode_request("").is_err());
        assert!(decode_request("not json").is_err());
        assert!(decode_request("[1,2,3]").is_err());
        assert!(decode_request("{\"cmd\":\"launch-missiles\"}").is_err());
        assert!(
            decode_request("{\"cmd\":\"submit\"}").is_err(),
            "missing specs"
        );
        assert!(decode_response("{\"event\":\"warp\"}").is_err());
    }
}
