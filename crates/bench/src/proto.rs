//! The `nocserve` wire protocol: newline-delimited JSON over a local
//! socket.
//!
//! Every message is one JSON object on one line. Requests carry a
//! `"cmd"` tag, responses an `"event"` tag; unknown tags and malformed
//! lines are answered with an `"error"` event and the connection stays
//! usable. A `submit` request is the only one answered by *multiple*
//! lines: `accepted`, then a `progress` stream, then one terminal
//! `result` (or `error`).
//!
//! ```text
//! → {"cmd":"submit","specs":[{"scheme":"FastPass","pattern":"uniform", …}]}
//! ← {"event":"accepted","job":1,"points":6,"computed":4,"cached":1,"deduped":1}
//! ← {"event":"progress","job":1,"done":5,"total":6}
//! ← {"event":"result","job":1,"sweeps":[…]}
//! ```
//!
//! The types here are shared verbatim by the daemon (`noc-serve`), the
//! `nocctl` CLI and the figure binaries' `--serve` mode, so the two
//! sides cannot drift. Sweep specs travel as [`WireSpec`] — scheme and
//! pattern by display name — and results as the *same*
//! [`SweepResult`]/[`LatencyPoint`] structs the batch executor emits,
//! which is what makes the daemon's output bitwise-comparable to batch
//! JSON artifacts.
//!
//! The vendored serde shim derives only structs and unit enums, so the
//! tagged [`Request`]/[`Response`] unions implement
//! `Serialize`/`Deserialize` by hand over the shim's [`Content`] tree.

use crate::runner::{LatencyPoint, SweepResult, SweepSpec};
use crate::store::{GcReport, Provenance, StoreStats};
use crate::SchemeId;
use serde::{field, Content, DeError, Deserialize, Serialize};
use traffic::SyntheticPattern;

/// Wire protocol version, echoed in `pong` and `status` so clients can
/// detect a daemon speaking a different generation.
///
/// v2 added the observability surface: the `metrics` and `watch`
/// commands, the `flight` event stream, and the optional provenance
/// stamp on `fetch` answers.
pub const PROTO_VERSION: u32 = 2;

/// Flight-recorder event names — the vocabulary of one job's lifecycle
/// span chain (`submitted → resolved → claimed → batch_started →
/// batch_done → stored → responded`), plus the sampler's `queue` depth
/// records. Shared by the daemon (producer), `nocctl watch`/`flight`
/// (consumers) and the chain validator so the three cannot drift.
pub mod flight_event {
    /// A submit was accepted; carries `job` and `points`.
    pub const SUBMITTED: &str = "submitted";
    /// One point of a job resolved at submit time; carries `job`, `key`
    /// and `kind` (one of [`KIND_MEMORY`], [`KIND_STORE`],
    /// [`KIND_DEDUP`], [`KIND_ENQUEUED`]).
    pub const RESOLVED: &str = "resolved";
    /// A worker claimed a queued point; carries `key`, `worker` and the
    /// queue wait in `wall_ms`.
    pub const CLAIMED: &str = "claimed";
    /// A worker began simulating a claimed batch; carries `worker` and
    /// `points`.
    pub const BATCH_STARTED: &str = "batch_started";
    /// A batch finished; carries `worker`, `points`, `wall_ms` and
    /// `cycles` (warmup + measure window per point).
    pub const BATCH_DONE: &str = "batch_done";
    /// A computed point landed in the on-disk store; carries `key` and
    /// `worker`.
    pub const STORED: &str = "stored";
    /// A point's simulation panicked; carries `key` and `worker`.
    pub const FAILED: &str = "failed";
    /// The terminal result (or error) for a job was sent; carries `job`.
    pub const RESPONDED: &str = "responded";
    /// A sampler tick's queue-depth reading; carries `depth`.
    pub const QUEUE: &str = "queue";

    /// `resolved` kind: served from the in-memory results map.
    pub const KIND_MEMORY: &str = "memory";
    /// `resolved` kind: served from the on-disk store.
    pub const KIND_STORE: &str = "store";
    /// `resolved` kind: rode another job's in-flight computation.
    pub const KIND_DEDUP: &str = "dedup";
    /// `resolved` kind: newly enqueued for the worker pool.
    pub const KIND_ENQUEUED: &str = "enqueued";
}

/// One flight-recorder event: a timestamped lifecycle record with only
/// the fields that event carries (see [`flight_event`]).
///
/// Serialization is hand-written: absent optional fields are *omitted*
/// (keeping the JSONL log compact and grep-friendly), and the decoder
/// tolerates both missing optionals and unknown extra fields, so a v2
/// client can tail a future daemon's log without choking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecord {
    /// Microseconds since the daemon started.
    pub ts_us: u64,
    /// Event name (one of [`flight_event`]).
    pub event: String,
    /// Job id, for job-scoped events.
    pub job: Option<u64>,
    /// Point cache key (16 hex digits), for point-scoped events.
    pub key: Option<String>,
    /// Resolution kind, for `resolved` events.
    pub kind: Option<String>,
    /// Worker id, for worker-scoped events.
    pub worker: Option<u64>,
    /// Point count (job total or batch size).
    pub points: Option<u64>,
    /// Wall-clock milliseconds (batch duration, queue wait).
    pub wall_ms: Option<u64>,
    /// Simulated cycles per point (warmup + measure).
    pub cycles: Option<u64>,
    /// Queue depth, for `queue` samples.
    pub depth: Option<u64>,
}

impl FlightRecord {
    /// A record of `event` with no fields set (the producer fills in
    /// what the event carries).
    pub fn of(event: &str) -> FlightRecord {
        FlightRecord {
            event: event.to_string(),
            ..FlightRecord::default()
        }
    }
}

impl Serialize for FlightRecord {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("ts_us".to_string(), self.ts_us.to_content()),
            ("event".to_string(), self.event.to_content()),
        ];
        let numbers = [
            ("job", &self.job),
            ("worker", &self.worker),
            ("points", &self.points),
            ("wall_ms", &self.wall_ms),
            ("cycles", &self.cycles),
            ("depth", &self.depth),
        ];
        if let Some(key) = &self.key {
            map.push(("key".to_string(), key.to_content()));
        }
        if let Some(kind) = &self.kind {
            map.push(("kind".to_string(), kind.to_content()));
        }
        for (name, value) in numbers {
            if let Some(v) = value {
                map.push((name.to_string(), v.to_content()));
            }
        }
        Content::Map(map)
    }
}

impl Deserialize for FlightRecord {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("flight record must be a JSON object".to_string()))?;
        let opt_u = |name: &str| -> Result<Option<u64>, DeError> {
            match field(map, name) {
                Ok(content) => Option::<u64>::from_content(content),
                Err(_) => Ok(None),
            }
        };
        let opt_s = |name: &str| -> Result<Option<String>, DeError> {
            match field(map, name) {
                Ok(content) => Option::<String>::from_content(content),
                Err(_) => Ok(None),
            }
        };
        Ok(FlightRecord {
            ts_us: u64::from_content(field(map, "ts_us")?)?,
            event: String::from_content(field(map, "event")?)?,
            job: opt_u("job")?,
            key: opt_s("key")?,
            kind: opt_s("kind")?,
            worker: opt_u("worker")?,
            points: opt_u("points")?,
            wall_ms: opt_u("wall_ms")?,
            cycles: opt_u("cycles")?,
            depth: opt_u("depth")?,
        })
    }
}

/// One named counter or gauge reading in a [`MetricsReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricValue {
    /// Metric name (statsd-compatible, unprefixed).
    pub name: String,
    /// Current value (counters: lifetime total; gauges: last sample).
    pub value: u64,
}

/// A fixed-bucket histogram's summary: totals plus bucket-resolution
/// percentiles (each percentile reports its bucket's upper bound).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Histogram name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
    /// 50th-percentile bucket bound.
    pub p50: u64,
    /// 90th-percentile bucket bound.
    pub p90: u64,
    /// 99th-percentile bucket bound.
    pub p99: u64,
}

/// One worker's utilization block in a [`MetricsReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Worker id (0-based).
    pub worker: u64,
    /// Batches this worker has simulated.
    pub batches: u64,
    /// Points this worker has simulated.
    pub points: u64,
    /// Wall-clock milliseconds spent simulating.
    pub busy_ms: u64,
    /// Busy fraction over the sampler's observations (0.0–1.0).
    pub utilization: f64,
}

/// The flight recorder's own health counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightStats {
    /// Events published to the bus.
    pub emitted: u64,
    /// Events the writer thread has durably written.
    pub written: u64,
    /// Events dropped because the bounded queue was full (the
    /// never-stall contract: logging sheds load instead of blocking).
    pub dropped: u64,
    /// Live `watch` subscribers.
    pub watchers: u64,
}

/// The full metrics-registry dump answered to [`Request::Metrics`] —
/// what `nocctl metrics [--json]` renders.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Wire protocol version.
    pub proto: u32,
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// Lifetime counters, in registry order.
    pub counters: Vec<MetricValue>,
    /// Last-sampled gauges (queue depth, inflight points).
    pub gauges: Vec<MetricValue>,
    /// Histogram summaries with percentiles.
    pub histograms: Vec<HistogramSummary>,
    /// Per-worker utilization.
    pub workers: Vec<WorkerReport>,
    /// Flight-recorder health.
    pub flight: FlightStats,
}

/// One sweep spec as it travels on the wire: scheme and pattern by
/// display name, everything else verbatim from [`SweepSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpec {
    /// Scheme display name ([`SchemeId::name`], case-insensitive).
    pub scheme: String,
    /// Pattern display name ([`SyntheticPattern::name`], case-insensitive).
    pub pattern: String,
    /// Injection rates, in output order.
    pub rates: Vec<f64>,
    /// Mesh edge length.
    pub size: u64,
    /// FastPass VCs per input buffer.
    pub fp_vcs: u64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl WireSpec {
    /// Encodes a runner spec for the wire.
    pub fn from_spec(spec: &SweepSpec) -> WireSpec {
        WireSpec {
            scheme: spec.id.name().to_string(),
            pattern: spec.pattern.name().to_string(),
            rates: spec.rates.clone(),
            size: spec.size as u64,
            fp_vcs: spec.fp_vcs as u64,
            warmup: spec.warmup,
            measure: spec.measure,
            seed: spec.seed,
        }
    }

    /// Decodes back into a runner spec, validating every axis. The
    /// bounds are sanity limits for a *local* trusted service: they
    /// exist to turn typos into readable errors, not to sandbox.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid axis.
    pub fn to_spec(&self) -> Result<SweepSpec, String> {
        let id = SchemeId::parse(&self.scheme)
            .ok_or_else(|| format!("unknown scheme `{}`", self.scheme))?;
        let pattern = SyntheticPattern::from_name(&self.pattern)
            .ok_or_else(|| format!("unknown pattern `{}`", self.pattern))?;
        if self.rates.is_empty() {
            return Err("spec has no rates".to_string());
        }
        if let Some(bad) = self
            .rates
            .iter()
            .find(|r| !r.is_finite() || **r <= 0.0 || **r > 1.0)
        {
            return Err(format!("rate {bad} outside (0, 1]"));
        }
        if !(2..=64).contains(&self.size) {
            return Err(format!("mesh size {} outside 2..=64", self.size));
        }
        if !(1..=8).contains(&self.fp_vcs) {
            return Err(format!("fp_vcs {} outside 1..=8", self.fp_vcs));
        }
        if self.measure == 0 {
            return Err("measure window must be at least 1 cycle".to_string());
        }
        Ok(SweepSpec {
            id,
            pattern,
            rates: self.rates.clone(),
            size: self.size as usize,
            fp_vcs: self.fp_vcs as usize,
            warmup: self.warmup,
            measure: self.measure,
            seed: self.seed,
        })
    }
}

/// A client request: one line, tagged by `"cmd"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Daemon counters and store stats; answered with [`Response::Status`].
    Status,
    /// A sweep job; answered with accepted/progress/result stream.
    Submit {
        /// The sweeps to resolve.
        specs: Vec<WireSpec>,
    },
    /// Point lookup by store key (16-hex-digit, as printed by
    /// [`crate::store::format_key`]); answered with [`Response::Points`].
    Fetch {
        /// Keys to look up.
        keys: Vec<String>,
    },
    /// Drop store entries by key; answered with [`Response::Evicted`].
    Evict {
        /// Keys to drop.
        keys: Vec<String>,
    },
    /// Run a store garbage-collection pass; answered with
    /// [`Response::GcDone`].
    Gc,
    /// Metrics-registry dump (counters, percentiles, worker
    /// utilization); answered with [`Response::Metrics`].
    Metrics,
    /// Subscribe this connection to the live flight-event stream:
    /// answered with [`Response::Watching`], then a [`Response::Flight`]
    /// stream until the peer hangs up or the daemon shuts down. The
    /// connection serves no other requests afterwards.
    Watch,
    /// Stop the daemon after answering [`Response::Bye`].
    Shutdown,
}

impl Serialize for Request {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = Vec::new();
        let cmd = match self {
            Request::Ping => "ping",
            Request::Status => "status",
            Request::Submit { .. } => "submit",
            Request::Fetch { .. } => "fetch",
            Request::Evict { .. } => "evict",
            Request::Gc => "gc",
            Request::Metrics => "metrics",
            Request::Watch => "watch",
            Request::Shutdown => "shutdown",
        };
        map.push(("cmd".to_string(), Content::Str(cmd.to_string())));
        match self {
            Request::Submit { specs } => map.push(("specs".to_string(), specs.to_content())),
            Request::Fetch { keys } | Request::Evict { keys } => {
                map.push(("keys".to_string(), keys.to_content()));
            }
            _ => {}
        }
        Content::Map(map)
    }
}

impl Deserialize for Request {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("request must be a JSON object".to_string()))?;
        let cmd = field(map, "cmd")?
            .as_str()
            .ok_or_else(|| DeError("`cmd` must be a string".to_string()))?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "submit" => Ok(Request::Submit {
                specs: Vec::<WireSpec>::from_content(field(map, "specs")?)?,
            }),
            "fetch" => Ok(Request::Fetch {
                keys: Vec::<String>::from_content(field(map, "keys")?)?,
            }),
            "evict" => Ok(Request::Evict {
                keys: Vec::<String>::from_content(field(map, "keys")?)?,
            }),
            "gc" => Ok(Request::Gc),
            "metrics" => Ok(Request::Metrics),
            "watch" => Ok(Request::Watch),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(DeError(format!("unknown cmd `{other}`"))),
        }
    }
}

/// Daemon counters as reported by [`Request::Status`] — the CI `serve`
/// job's dedup proof reads `points_computed` and the hit counters out
/// of this JSON (`serve-summary.json`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Wire protocol version.
    pub proto: u32,
    /// Store schema version in effect.
    pub schema: u32,
    /// Seconds since the daemon started.
    pub uptime_secs: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (well-formed lines).
    pub requests: u64,
    /// Malformed or unparseable request lines.
    pub bad_requests: u64,
    /// Submit requests accepted.
    pub jobs_submitted: u64,
    /// Submit requests fully answered.
    pub jobs_completed: u64,
    /// Points requested across all jobs (with multiplicity).
    pub points_requested: u64,
    /// Points actually simulated by the worker pool.
    pub points_computed: u64,
    /// Points that failed (a worker panicked on them).
    pub points_failed: u64,
    /// Points served from the on-disk store.
    pub store_hits: u64,
    /// Points served from the in-memory results map.
    pub memory_hits: u64,
    /// Points deduplicated onto another job's in-flight computation.
    pub dedup_waits: u64,
    /// Store entries evicted via `evict`.
    pub evictions: u64,
    /// Points queued but not yet claimed by a worker.
    pub queue_depth: u64,
    /// Points currently being simulated.
    pub inflight: u64,
    /// On-disk store size.
    pub store: StoreStats,
    /// Store directory (diagnostics).
    pub store_dir: String,
}

/// One `fetch` answer: the key, whether the store had it, the point,
/// and — when the envelope was stamped — its compute provenance.
///
/// `Deserialize` is hand-written so `provenance` is optional on the
/// wire: a v2 client still decodes a v1 daemon's answers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FetchedPoint {
    /// The requested key.
    pub key: String,
    /// Whether an entry was found.
    pub found: bool,
    /// The stored point, when found.
    pub point: Option<LatencyPoint>,
    /// How and when the point was computed, when the store recorded it.
    pub provenance: Option<Provenance>,
}

impl Deserialize for FetchedPoint {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("fetched point must be a JSON object".to_string()))?;
        Ok(FetchedPoint {
            key: String::from_content(field(map, "key")?)?,
            found: bool::from_content(field(map, "found")?)?,
            point: Option::<LatencyPoint>::from_content(field(map, "point")?)?,
            provenance: match field(map, "provenance") {
                Ok(content) => Option::<Provenance>::from_content(content)?,
                Err(_) => None,
            },
        })
    }
}

/// A daemon response line, tagged by `"event"`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong {
        /// Wire protocol version the daemon speaks.
        proto: u32,
    },
    /// A submit was parsed and enqueued.
    Accepted {
        /// Job id, unique within this daemon.
        job: u64,
        /// Total points in the job.
        points: u64,
        /// Points this job newly enqueued for computation.
        computed: u64,
        /// Points served from the store or the in-memory results map.
        cached: u64,
        /// Points already in flight for another job (deduplicated).
        deduped: u64,
    },
    /// Per-job progress; sent whenever the done count advances.
    Progress {
        /// Job id.
        job: u64,
        /// Points resolved so far.
        done: u64,
        /// Total points in the job.
        total: u64,
    },
    /// Terminal answer to a submit: the assembled sweeps, point order
    /// matching the request's spec/rate order.
    Result {
        /// Job id.
        job: u64,
        /// One sweep per submitted spec.
        sweeps: Vec<SweepResult>,
    },
    /// Daemon counters.
    Status(Box<StatusReport>),
    /// Fetch answers, in request key order.
    Points {
        /// One entry per requested key.
        points: Vec<FetchedPoint>,
    },
    /// Evict outcome.
    Evicted {
        /// Entries actually removed.
        removed: u64,
    },
    /// Garbage-collection outcome.
    GcDone(GcReport),
    /// The metrics-registry dump.
    Metrics(Box<MetricsReport>),
    /// A watch subscription is live; [`Response::Flight`] events follow.
    Watching,
    /// One live flight-recorder event on a watching connection.
    Flight(FlightRecord),
    /// The request could not be served; the connection stays open.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Shutdown acknowledged; the daemon is stopping.
    Bye,
}

impl Serialize for Response {
    fn to_content(&self) -> Content {
        let mut map: Vec<(String, Content)> = Vec::new();
        let tag = match self {
            Response::Pong { .. } => "pong",
            Response::Accepted { .. } => "accepted",
            Response::Progress { .. } => "progress",
            Response::Result { .. } => "result",
            Response::Status(_) => "status",
            Response::Points { .. } => "points",
            Response::Evicted { .. } => "evicted",
            Response::GcDone(_) => "gc",
            Response::Metrics(_) => "metrics",
            Response::Watching => "watching",
            Response::Flight(_) => "flight",
            Response::Error { .. } => "error",
            Response::Bye => "bye",
        };
        map.push(("event".to_string(), Content::Str(tag.to_string())));
        match self {
            Response::Pong { proto } => map.push(("proto".to_string(), proto.to_content())),
            Response::Accepted {
                job,
                points,
                computed,
                cached,
                deduped,
            } => {
                map.push(("job".to_string(), job.to_content()));
                map.push(("points".to_string(), points.to_content()));
                map.push(("computed".to_string(), computed.to_content()));
                map.push(("cached".to_string(), cached.to_content()));
                map.push(("deduped".to_string(), deduped.to_content()));
            }
            Response::Progress { job, done, total } => {
                map.push(("job".to_string(), job.to_content()));
                map.push(("done".to_string(), done.to_content()));
                map.push(("total".to_string(), total.to_content()));
            }
            Response::Result { job, sweeps } => {
                map.push(("job".to_string(), job.to_content()));
                map.push(("sweeps".to_string(), sweeps.to_content()));
            }
            Response::Status(report) => map.push(("status".to_string(), report.to_content())),
            Response::Points { points } => map.push(("points".to_string(), points.to_content())),
            Response::Evicted { removed } => {
                map.push(("removed".to_string(), removed.to_content()));
            }
            Response::GcDone(report) => map.push(("report".to_string(), report.to_content())),
            Response::Metrics(report) => map.push(("metrics".to_string(), report.to_content())),
            Response::Flight(record) => map.push(("record".to_string(), record.to_content())),
            Response::Error { message } => {
                map.push(("message".to_string(), message.to_content()));
            }
            Response::Watching | Response::Bye => {}
        }
        Content::Map(map)
    }
}

impl Deserialize for Response {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c
            .as_map()
            .ok_or_else(|| DeError("response must be a JSON object".to_string()))?;
        let tag = field(map, "event")?
            .as_str()
            .ok_or_else(|| DeError("`event` must be a string".to_string()))?;
        let u = |name: &str| -> Result<u64, DeError> { u64::from_content(field(map, name)?) };
        match tag {
            "pong" => Ok(Response::Pong {
                proto: u32::from_content(field(map, "proto")?)?,
            }),
            "accepted" => Ok(Response::Accepted {
                job: u("job")?,
                points: u("points")?,
                computed: u("computed")?,
                cached: u("cached")?,
                deduped: u("deduped")?,
            }),
            "progress" => Ok(Response::Progress {
                job: u("job")?,
                done: u("done")?,
                total: u("total")?,
            }),
            "result" => Ok(Response::Result {
                job: u("job")?,
                sweeps: Vec::<SweepResult>::from_content(field(map, "sweeps")?)?,
            }),
            "status" => Ok(Response::Status(Box::new(StatusReport::from_content(
                field(map, "status")?,
            )?))),
            "points" => Ok(Response::Points {
                points: Vec::<FetchedPoint>::from_content(field(map, "points")?)?,
            }),
            "evicted" => Ok(Response::Evicted {
                removed: u("removed")?,
            }),
            "gc" => Ok(Response::GcDone(GcReport::from_content(field(
                map, "report",
            )?)?)),
            "metrics" => Ok(Response::Metrics(Box::new(MetricsReport::from_content(
                field(map, "metrics")?,
            )?))),
            "watching" => Ok(Response::Watching),
            "flight" => Ok(Response::Flight(FlightRecord::from_content(field(
                map, "record",
            )?)?)),
            "error" => Ok(Response::Error {
                message: String::from_content(field(map, "message")?)?,
            }),
            "bye" => Ok(Response::Bye),
            other => Err(DeError(format!("unknown event `{other}`"))),
        }
    }
}

/// Encodes a message as one compact JSON line (no trailing newline —
/// the transport appends it).
pub fn encode<T: Serialize>(msg: &T) -> String {
    serde_json::to_string(msg).expect("protocol messages always serialize")
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a human-readable description of the parse failure, suitable
/// for echoing back in an `error` event.
pub fn decode_request(line: &str) -> Result<Request, String> {
    serde_json::from_str::<Request>(line.trim()).map_err(|e| e.to_string())
}

/// Decodes one response line.
///
/// # Errors
///
/// Returns a human-readable description of the parse failure.
pub fn decode_response(line: &str) -> Result<Response, String> {
    serde_json::from_str::<Response>(line.trim()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SweepSpec {
        SweepSpec {
            id: SchemeId::FastPass,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.02, 0.05],
            size: 4,
            fp_vcs: 2,
            warmup: 100,
            measure: 300,
            seed: 5,
        }
    }

    #[test]
    fn wire_spec_round_trips_through_names() {
        let original = spec();
        let wire = WireSpec::from_spec(&original);
        let back = wire.to_spec().expect("valid spec");
        assert_eq!(back.id, original.id);
        assert_eq!(back.pattern, original.pattern);
        assert_eq!(back.rates, original.rates);
        assert_eq!(
            (back.size, back.fp_vcs, back.warmup, back.measure, back.seed),
            (
                original.size,
                original.fp_vcs,
                original.warmup,
                original.measure,
                original.seed
            )
        );
    }

    #[test]
    fn wire_spec_rejects_bad_axes() {
        let good = WireSpec::from_spec(&spec());
        let cases: Vec<(WireSpec, &str)> = vec![
            (
                WireSpec {
                    scheme: "NoSuchScheme".into(),
                    ..good.clone()
                },
                "scheme",
            ),
            (
                WireSpec {
                    pattern: "NoSuchPattern".into(),
                    ..good.clone()
                },
                "pattern",
            ),
            (
                WireSpec {
                    rates: vec![],
                    ..good.clone()
                },
                "rates",
            ),
            (
                WireSpec {
                    rates: vec![-0.1],
                    ..good.clone()
                },
                "rate",
            ),
            (
                WireSpec {
                    size: 1,
                    ..good.clone()
                },
                "size",
            ),
            (
                WireSpec {
                    fp_vcs: 0,
                    ..good.clone()
                },
                "fp_vcs",
            ),
            (
                WireSpec {
                    measure: 0,
                    ..good.clone()
                },
                "measure",
            ),
        ];
        for (bad, what) in cases {
            assert!(bad.to_spec().is_err(), "{what} should be rejected");
        }
    }

    #[test]
    fn scheme_and_pattern_names_parse_case_insensitively() {
        assert_eq!(SchemeId::parse("fastpass"), Some(SchemeId::FastPass));
        assert_eq!(SchemeId::parse("VCT-XY"), Some(SchemeId::Vct));
        assert_eq!(SchemeId::parse("bogus"), None);
        assert_eq!(
            SyntheticPattern::from_name("Transpose"),
            Some(SyntheticPattern::Transpose)
        );
        assert_eq!(SyntheticPattern::from_name("bogus"), None);
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Ping,
            Request::Status,
            Request::Submit {
                specs: vec![WireSpec::from_spec(&spec())],
            },
            Request::Fetch {
                keys: vec!["00000000000000ff".to_string()],
            },
            Request::Evict {
                keys: vec!["00000000000000ff".to_string()],
            },
            Request::Gc,
            Request::Metrics,
            Request::Watch,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = encode(&req);
            assert!(!line.contains('\n'), "one line per message: {line}");
            let back = decode_request(&line).expect("round trip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong {
                proto: PROTO_VERSION,
            },
            Response::Accepted {
                job: 3,
                points: 6,
                computed: 4,
                cached: 1,
                deduped: 1,
            },
            Response::Progress {
                job: 3,
                done: 5,
                total: 6,
            },
            Response::Result {
                job: 3,
                sweeps: vec![SweepResult {
                    scheme: "FastPass".into(),
                    pattern: "uniform".into(),
                    size: 4,
                    points: vec![],
                }],
            },
            Response::Status(Box::new(StatusReport {
                proto: PROTO_VERSION,
                points_computed: 6,
                ..StatusReport::default()
            })),
            Response::Points {
                points: vec![FetchedPoint {
                    key: "00000000000000ff".into(),
                    found: false,
                    point: None,
                    provenance: Some(Provenance {
                        unix_ms: 1_700_000_000_000,
                        wall_ms: 42,
                        worker: None,
                        git_sha: "abc123".into(),
                        cycles: 300,
                    }),
                }],
            },
            Response::Evicted { removed: 2 },
            Response::GcDone(GcReport::default()),
            Response::Metrics(Box::new(MetricsReport {
                proto: PROTO_VERSION,
                uptime_secs: 9,
                counters: vec![MetricValue {
                    name: "points_computed".into(),
                    value: 6,
                }],
                gauges: vec![MetricValue {
                    name: "queue_depth".into(),
                    value: 0,
                }],
                histograms: vec![HistogramSummary {
                    name: "batch_wall_ms".into(),
                    count: 3,
                    sum: 420,
                    max: 200,
                    p50: 100,
                    p90: 200,
                    p99: 200,
                }],
                workers: vec![WorkerReport {
                    worker: 0,
                    batches: 2,
                    points: 6,
                    busy_ms: 400,
                    utilization: 0.5,
                }],
                flight: FlightStats {
                    emitted: 40,
                    written: 40,
                    dropped: 0,
                    watchers: 1,
                },
            })),
            Response::Watching,
            Response::Flight(FlightRecord {
                ts_us: 1_234,
                event: flight_event::BATCH_DONE.into(),
                worker: Some(1),
                points: Some(4),
                wall_ms: Some(118),
                cycles: Some(300),
                ..FlightRecord::default()
            }),
            Response::Error {
                message: "nope".into(),
            },
            Response::Bye,
        ];
        for resp in resps {
            let line = encode(&resp);
            assert!(!line.contains('\n'), "one line per message: {line}");
            let back = decode_response(&line).expect("round trip");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_lines_decode_to_errors() {
        assert!(decode_request("").is_err());
        assert!(decode_request("not json").is_err());
        assert!(decode_request("[1,2,3]").is_err());
        assert!(decode_request("{\"cmd\":\"launch-missiles\"}").is_err());
        assert!(
            decode_request("{\"cmd\":\"submit\"}").is_err(),
            "missing specs"
        );
        assert!(decode_response("{\"event\":\"warp\"}").is_err());
    }

    #[test]
    fn flight_records_omit_absent_fields_and_tolerate_missing_ones() {
        // A sparse record serializes without its unset fields…
        let line = encode(&FlightRecord {
            ts_us: 7,
            event: flight_event::QUEUE.into(),
            depth: Some(3),
            ..FlightRecord::default()
        });
        for absent in ["job", "key", "kind", "worker", "wall_ms", "cycles"] {
            assert!(
                !line.contains(absent),
                "`{absent}` should be omitted: {line}"
            );
        }
        // …and the minimal possible line still decodes.
        let minimal: FlightRecord =
            serde_json::from_str("{\"ts_us\":1,\"event\":\"submitted\"}").expect("minimal decodes");
        assert_eq!(minimal.event, flight_event::SUBMITTED);
        assert_eq!(minimal.job, None);
    }

    #[test]
    fn decoders_ignore_unknown_fields() {
        // Forward compatibility: a future daemon may add fields to any
        // message; today's decoders must skip what they don't know.
        let req = decode_request("{\"cmd\":\"metrics\",\"verbosity\":\"max\"}").expect("request");
        assert_eq!(req, Request::Metrics);
        let resp =
            decode_response("{\"event\":\"pong\",\"proto\":2,\"motd\":\"hi\"}").expect("response");
        assert_eq!(resp, Response::Pong { proto: 2 });
        let record: FlightRecord = serde_json::from_str(
            "{\"ts_us\":5,\"event\":\"stored\",\"key\":\"00000000000000ff\",\"shard\":9}",
        )
        .expect("flight record");
        assert_eq!(record.key.as_deref(), Some("00000000000000ff"));
        // A fetch answer without the provenance key (a v1 daemon)
        // decodes with provenance: None.
        let fetched: FetchedPoint =
            serde_json::from_str("{\"key\":\"00000000000000ff\",\"found\":false,\"point\":null}")
                .expect("v1 fetch answer");
        assert_eq!(fetched.provenance, None);
    }
}
