//! Sweep runners and result emission.
//!
//! Every figure of the paper is an embarrassingly parallel grid of
//! independent simulation points — `(scheme, pattern, rate)` triples
//! that each construct their own [`Simulation`] from a seeded RNG. The
//! runners here exploit that:
//!
//! * [`parallel_map`] — an ordered work-queue executor
//!   (`std::thread::scope` + channels, no dependencies) shared by all
//!   `fig*`/`table*`/`ablation` binaries;
//! * [`run_sweep_parallel`] — the latency-vs-rate sweep entry point,
//!   with per-point progress lines and a deterministic on-disk result
//!   cache under `results/cache/` so interrupted sweeps resume instead
//!   of recomputing;
//! * [`sweep`] — the serial reference path. Parallel results are
//!   bitwise identical to it because every point's simulation is
//!   self-contained (enforced by a test in `tests/parallel_sweep.rs`).
//!
//! Knobs: `NOC_JOBS` (worker threads, default = available cores),
//! `FP_CACHE` (cache directory; `off` disables), `FP_OUT` (JSON output
//! directory, default `results/`).

use crate::registry::SchemeId;
use noc_sim::Simulation;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use traffic::{SyntheticPattern, SyntheticWorkload};

/// Reads a `u64` knob from the environment with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of worker threads requested via `NOC_JOBS`, defaulting to the
/// machine's available parallelism. Always at least 1.
pub fn num_jobs() -> usize {
    let default = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (env_u64("NOC_JOBS", default as u64) as usize).max(1)
}

/// Runs `jobs` on `workers` threads and returns the results in job
/// order. `on_done` fires on the coordinating thread as each job
/// finishes (in completion order), for progress reporting.
///
/// Each job is claimed atomically from a shared queue, so long and short
/// jobs balance across workers. Results come back over a channel; the
/// output `Vec` is assembled by job index, which makes the caller's view
/// independent of scheduling order — the cornerstone of the
/// serial-vs-parallel determinism guarantee.
///
/// # Panics
///
/// Propagates the first panicking job's payload after all workers stop.
pub fn parallel_map_with<T, F>(
    jobs: Vec<F>,
    workers: usize,
    mut on_done: impl FnMut(usize, &T),
) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let queue: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for _ in 0..workers.clamp(1, n) {
            let tx = tx.clone();
            let queue = &queue;
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                // If send fails the coordinator is gone (a sibling
                // panicked); stop quietly and let scope re-raise.
                if tx.send((i, job())).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Ends when every worker is done (all senders dropped); short
        // reads mean a worker panicked, which scope exit re-raises.
        while let Ok((i, value)) = rx.recv() {
            on_done(i, &value);
            results[i] = Some(value);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker completed every claimed job"))
        .collect()
}

/// [`parallel_map_with`] without a progress callback.
pub fn parallel_map<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    parallel_map_with(jobs, workers, |_, _| {})
}

/// One point of a latency-vs-injection-rate curve (Fig. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Average end-to-end packet latency (cycles).
    pub avg_latency: f64,
    /// Accepted throughput (packets/node/cycle).
    pub throughput: f64,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Fraction delivered as FastPass-Packets (0 for baselines).
    pub fastpass_fraction: f64,
    /// Fraction of generated packets dropped (FastPass bubble).
    pub dropped_fraction: f64,
}

/// A full sweep for one scheme on one pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Scheme name.
    pub scheme: String,
    /// Pattern name.
    pub pattern: String,
    /// Mesh edge length.
    pub size: usize,
    /// Points in rate order.
    pub points: Vec<LatencyPoint>,
}

impl SweepResult {
    /// The saturation rate: the first offered rate whose latency exceeds
    /// `3 ×` the first point's latency (the standard definition used in
    /// Figs. 7/8), or the last rate if it never saturates in range.
    pub fn saturation_rate(&self) -> f64 {
        let zero_load = self.points.first().map(|p| p.avg_latency).unwrap_or(0.0);
        for w in self.points.windows(2) {
            if w[1].avg_latency > 3.0 * zero_load || !w[1].avg_latency.is_finite() {
                return w[0].rate;
            }
        }
        self.points.last().map(|p| p.rate).unwrap_or(0.0)
    }
}

/// Everything that identifies one sweep: a scheme/pattern pair plus the
/// rate axis and simulation parameters.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Scheme under test.
    pub id: SchemeId,
    /// Synthetic destination pattern.
    pub pattern: SyntheticPattern,
    /// Injection rates, in output order.
    pub rates: Vec<f64>,
    /// Mesh edge length.
    pub size: usize,
    /// FastPass VCs per input buffer (ignored by VN-based schemes).
    pub fp_vcs: usize,
    /// Warmup cycles (statistics discarded).
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Simulation seed.
    pub seed: u64,
}

/// Execution options for [`run_sweep_parallel`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads.
    pub jobs: usize,
    /// Completed-point cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Whether to emit per-point progress lines on stderr.
    pub progress: bool,
}

impl SweepOptions {
    /// Options from the environment: `NOC_JOBS` workers, cache under
    /// `results/cache/` unless `FP_CACHE` overrides the directory or
    /// disables it (`off`/`0`/empty), progress on.
    pub fn from_env() -> Self {
        let cache_dir = match std::env::var("FP_CACHE") {
            Err(_) => Some(PathBuf::from("results/cache")),
            Ok(v) if v.is_empty() || v == "off" || v == "0" => None,
            Ok(v) => Some(PathBuf::from(v)),
        };
        SweepOptions {
            jobs: num_jobs(),
            cache_dir,
            progress: true,
        }
    }

    /// Quiet, uncached options with an explicit worker count (tests).
    #[must_use]
    pub fn quiet(jobs: usize) -> Self {
        SweepOptions {
            jobs,
            cache_dir: None,
            progress: false,
        }
    }
}

pub use crate::store::CACHE_SCHEMA_VERSION;

/// FNV-1a 64-bit, used for stable cache keys (`DefaultHasher` makes no
/// cross-version stability promise).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key of one simulation point: a stable hash over everything
/// that determines its result — scheme, pattern, the full [`SimConfig`]
/// (serialized), rate, seed and window lengths.
///
/// [`SimConfig`]: noc_core::config::SimConfig
pub fn point_cache_key(spec: &SweepSpec, rate: f64) -> u64 {
    point_cache_key_versioned(spec, rate, CACHE_SCHEMA_VERSION)
}

/// [`point_cache_key`] with an explicit schema version — factored out so
/// tests can prove that bumping [`CACHE_SCHEMA_VERSION`] changes every
/// key (and therefore forces recomputation instead of stale cache hits).
fn point_cache_key_versioned(spec: &SweepSpec, rate: f64, version: u32) -> u64 {
    let cfg = spec.id.sim_config(spec.size, spec.fp_vcs, spec.seed);
    let cfg_json = serde_json::to_string(&cfg).expect("SimConfig serializes");
    let canonical = format!(
        "v{version}|{}|{}|{}|{rate:?}|{}|{}|{}",
        spec.id.name(),
        spec.pattern.name(),
        cfg_json,
        spec.seed,
        spec.warmup,
        spec.measure,
    );
    fnv1a64(canonical.as_bytes())
}

fn cache_load(dir: &Path, key: u64) -> Option<LatencyPoint> {
    crate::store::Store::new(dir).load(key)
}

fn cache_store(dir: &Path, key: u64, point: &LatencyPoint, provenance: &crate::store::Provenance) {
    // Cache writes are best-effort: a full disk or unwritable directory
    // degrades to recomputation, never to a wrong result.
    crate::store::Store::new(dir).store_with_provenance(key, point, Some(provenance));
}

/// Builds a fresh simulation for a scheme/pattern/rate triple at the
/// Table II configuration.
pub fn make_sim(
    id: SchemeId,
    pattern: SyntheticPattern,
    rate: f64,
    size: usize,
    fp_vcs: usize,
    seed: u64,
) -> Simulation {
    let cfg = id.sim_config(size, fp_vcs, seed);
    let scheme = id.build(&cfg, seed);
    let workload = SyntheticWorkload::new(pattern, rate, seed ^ 0x17AFF1C);
    Simulation::new(cfg, scheme, Box::new(workload))
}

/// Simulates one sweep point. Every call builds a fresh [`Simulation`]
/// from the spec's seed, so a point's result depends only on its inputs
/// — never on which thread ran it or what ran before it. Public so the
/// `nocserve` daemon computes points through the exact same path as the
/// batch executor (its bitwise-equivalence guarantee rests on this).
pub fn simulate_point(spec: &SweepSpec, rate: f64) -> LatencyPoint {
    let mut sim = make_sim(
        spec.id,
        spec.pattern,
        rate,
        spec.size,
        spec.fp_vcs,
        spec.seed,
    );
    let stats = sim.run_windows(spec.warmup, spec.measure);
    latency_point(rate, &stats)
}

/// Reduces one finished run's [`NetStats`] to the stored
/// [`LatencyPoint`]. Shared by [`simulate_point`] and the daemon's
/// batched workers so both paths derive identical points from identical
/// stats.
///
/// [`NetStats`]: noc_core::stats::NetStats
pub fn latency_point(rate: f64, stats: &noc_core::stats::NetStats) -> LatencyPoint {
    LatencyPoint {
        rate,
        avg_latency: stats.avg_latency(),
        throughput: stats.throughput_packets(),
        delivered: stats.delivered(),
        fastpass_fraction: stats.fastpass_fraction(),
        dropped_fraction: stats.dropped_fraction(),
    }
}

/// Runs a latency-vs-rate sweep serially (the reference path).
///
/// [`run_sweep_parallel`] produces bitwise-identical results; this stays
/// as the oracle for the determinism test and for callers that want a
/// single sweep without options plumbing.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    id: SchemeId,
    pattern: SyntheticPattern,
    rates: &[f64],
    size: usize,
    fp_vcs: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> SweepResult {
    let spec = SweepSpec {
        id,
        pattern,
        rates: rates.to_vec(),
        size,
        fp_vcs,
        warmup,
        measure,
        seed,
    };
    SweepResult {
        scheme: id.name().to_string(),
        pattern: pattern.name().to_string(),
        size,
        points: rates.iter().map(|&r| simulate_point(&spec, r)).collect(),
    }
}

/// Runs a batch of sweeps with every `(spec, rate)` point fanned out
/// across [`SweepOptions::jobs`] worker threads, returning one
/// [`SweepResult`] per spec with points in rate order.
///
/// Points already present in the cache are loaded instead of simulated,
/// so re-running a figure after an interrupted sweep only computes the
/// missing points. Results are bitwise identical to the serial
/// [`sweep`] path regardless of worker count or cache state.
pub fn run_sweep_parallel(specs: &[SweepSpec], opts: &SweepOptions) -> Vec<SweepResult> {
    let points: Vec<(usize, usize, f64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(si, spec)| {
            spec.rates
                .iter()
                .enumerate()
                .map(move |(ri, &r)| (si, ri, r))
        })
        .collect();
    let total = points.len();
    // Resolved once per run so cache writes don't each shell out.
    let git_sha = if opts.cache_dir.is_some() {
        crate::bench_out::git_sha()
    } else {
        String::new()
    };
    let jobs: Vec<_> = points
        .iter()
        .map(|&(si, _, rate)| {
            let spec = &specs[si];
            let cache_dir = opts.cache_dir.as_deref();
            let git_sha = &git_sha;
            move || -> (LatencyPoint, bool) {
                let key = cache_dir.map(|d| (d, point_cache_key(spec, rate)));
                if let Some((dir, k)) = key {
                    if let Some(hit) = cache_load(dir, k) {
                        return (hit, true);
                    }
                }
                let begun = std::time::Instant::now();
                let point = simulate_point(spec, rate);
                if let Some((dir, k)) = key {
                    // Provenance is metadata only — worker None marks
                    // the in-process batch executor as the producer.
                    let stamp = crate::store::Provenance::now(
                        begun.elapsed().as_millis() as u64,
                        None,
                        git_sha.clone(),
                        spec.warmup + spec.measure,
                    );
                    cache_store(dir, k, &point, &stamp);
                }
                (point, false)
            }
        })
        .collect();
    let mut done = 0usize;
    let results = parallel_map_with(jobs, opts.jobs, |i, (point, cached)| {
        done += 1;
        if opts.progress {
            let (si, _, _) = points[i];
            let spec = &specs[si];
            eprintln!(
                "[sweep {done}/{total}] {}/{} {}x{} rate={:.3} lat={:.1}{}",
                spec.id.name(),
                spec.pattern.name(),
                spec.size,
                spec.size,
                point.rate,
                point.avg_latency,
                if *cached { " (cached)" } else { "" },
            );
        }
    });
    let mut sweeps: Vec<SweepResult> = specs
        .iter()
        .map(|spec| SweepResult {
            scheme: spec.id.name().to_string(),
            pattern: spec.pattern.name().to_string(),
            size: spec.size,
            points: Vec::with_capacity(spec.rates.len()),
        })
        .collect();
    // `points` and `results` share indexing; rate order within a spec is
    // preserved because flat_map emitted rates in order.
    for (&(si, _, _), (point, _)) in points.iter().zip(results) {
        sweeps[si].points.push(point);
    }
    sweeps
}

/// Writes a serializable result into `$FP_OUT/<name>.json` (default
/// `results/`), creating the directory as needed. Returns the path.
pub fn emit_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = std::env::var("FP_OUT").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&dir)?;
    let path = PathBuf::from(dir).join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rate: f64, lat: f64) -> LatencyPoint {
        LatencyPoint {
            rate,
            avg_latency: lat,
            throughput: rate,
            delivered: 100,
            fastpass_fraction: 0.0,
            dropped_fraction: 0.0,
        }
    }

    fn sweep_of(points: Vec<LatencyPoint>) -> SweepResult {
        SweepResult {
            scheme: "x".into(),
            pattern: "y".into(),
            size: 8,
            points,
        }
    }

    #[test]
    fn env_u64_parses_and_defaults() {
        std::env::remove_var("FP_TEST_KNOB_XYZ");
        assert_eq!(env_u64("FP_TEST_KNOB_XYZ", 7), 7);
        std::env::set_var("FP_TEST_KNOB_XYZ", "42");
        assert_eq!(env_u64("FP_TEST_KNOB_XYZ", 7), 42);
        std::env::set_var("FP_TEST_KNOB_XYZ", "junk");
        assert_eq!(env_u64("FP_TEST_KNOB_XYZ", 7), 7);
        std::env::remove_var("FP_TEST_KNOB_XYZ");
    }

    #[test]
    fn env_u64_rejects_overflow_and_negatives() {
        std::env::set_var("FP_TEST_KNOB_OVF", "99999999999999999999999999");
        assert_eq!(env_u64("FP_TEST_KNOB_OVF", 5), 5);
        std::env::set_var("FP_TEST_KNOB_OVF", "-3");
        assert_eq!(env_u64("FP_TEST_KNOB_OVF", 5), 5);
        std::env::set_var("FP_TEST_KNOB_OVF", u64::MAX.to_string());
        assert_eq!(env_u64("FP_TEST_KNOB_OVF", 5), u64::MAX);
        std::env::remove_var("FP_TEST_KNOB_OVF");
    }

    #[test]
    fn saturation_rate_detects_knee() {
        let r = sweep_of(vec![
            mk(0.1, 10.0),
            mk(0.2, 12.0),
            mk(0.3, 50.0),
            mk(0.4, 500.0),
        ]);
        assert_eq!(r.saturation_rate(), 0.2);
    }

    #[test]
    fn saturation_rate_empty_sweep_is_zero() {
        assert_eq!(sweep_of(Vec::new()).saturation_rate(), 0.0);
    }

    #[test]
    fn saturation_rate_single_point_is_that_rate() {
        assert_eq!(sweep_of(vec![mk(0.05, 12.0)]).saturation_rate(), 0.05);
    }

    #[test]
    fn saturation_rate_never_saturating_returns_last_rate() {
        let r = sweep_of(vec![mk(0.1, 10.0), mk(0.2, 11.0), mk(0.3, 12.0)]);
        assert_eq!(r.saturation_rate(), 0.3);
    }

    #[test]
    fn saturation_rate_stops_at_non_finite_latency() {
        let nan = sweep_of(vec![mk(0.1, 10.0), mk(0.2, 11.0), mk(0.3, f64::NAN)]);
        assert_eq!(nan.saturation_rate(), 0.2);
        let inf = sweep_of(vec![mk(0.1, 10.0), mk(0.2, f64::INFINITY)]);
        assert_eq!(inf.saturation_rate(), 0.1);
    }

    #[test]
    fn parallel_map_preserves_order_and_balances() {
        let jobs: Vec<_> = (0..37).map(|i| move || i * 2).collect();
        let out = parallel_map(jobs, 4);
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_runs_with_more_workers_than_jobs() {
        let jobs: Vec<_> = (0..3).map(|i| move || i).collect();
        assert_eq!(parallel_map(jobs, 64), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let jobs: Vec<fn() -> u32> = Vec::new();
        assert!(parallel_map(jobs, 4).is_empty());
    }

    #[test]
    fn cache_key_distinguishes_every_axis() {
        let base = SweepSpec {
            id: SchemeId::FastPass,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.1],
            size: 4,
            fp_vcs: 2,
            warmup: 100,
            measure: 200,
            seed: 1,
        };
        let k = point_cache_key(&base, 0.1);
        let variants = [
            SweepSpec {
                id: SchemeId::Spin,
                ..base.clone()
            },
            SweepSpec {
                pattern: SyntheticPattern::Transpose,
                ..base.clone()
            },
            SweepSpec {
                size: 8,
                ..base.clone()
            },
            SweepSpec {
                fp_vcs: 4,
                ..base.clone()
            },
            SweepSpec {
                warmup: 101,
                ..base.clone()
            },
            SweepSpec {
                measure: 201,
                ..base.clone()
            },
            SweepSpec {
                seed: 2,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(point_cache_key(v, 0.1), k, "{v:?}");
        }
        assert_ne!(point_cache_key(&base, 0.2), k, "rate must be keyed");
        assert_eq!(point_cache_key(&base.clone(), 0.1), k, "key is stable");
    }

    #[test]
    fn schema_version_bump_forces_recomputation() {
        let spec = SweepSpec {
            id: SchemeId::Vct,
            pattern: SyntheticPattern::Uniform,
            rates: vec![0.02],
            size: 4,
            fp_vcs: 2,
            warmup: 100,
            measure: 200,
            seed: 1,
        };
        // Key level: every schema version yields a distinct key, and the
        // public key is the one derived from the current version.
        let current = point_cache_key(&spec, 0.02);
        assert_eq!(
            current,
            point_cache_key_versioned(&spec, 0.02, CACHE_SCHEMA_VERSION)
        );
        for old in 0..CACHE_SCHEMA_VERSION {
            assert_ne!(
                point_cache_key_versioned(&spec, 0.02, old),
                current,
                "v{old} key must not collide with the current key"
            );
        }

        // Behavior level: a stale entry stored under a previous version's
        // key must be ignored — the sweep recomputes and stores under the
        // current key.
        let dir = std::env::temp_dir().join(format!("fp_cache_schema_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stale_key = point_cache_key_versioned(&spec, 0.02, CACHE_SCHEMA_VERSION - 1);
        let poisoned = mk(0.02, 99_999.0);
        let stamp = crate::store::Provenance::now(0, None, String::new(), 0);
        cache_store(&dir, stale_key, &poisoned, &stamp);

        let opts = SweepOptions {
            jobs: 1,
            cache_dir: Some(dir.clone()),
            progress: false,
        };
        let results = run_sweep_parallel(std::slice::from_ref(&spec), &opts);
        let point = &results[0].points[0];
        assert!(
            (point.avg_latency - 99_999.0).abs() > 1.0,
            "stale v{} cache entry was served instead of recomputing",
            CACHE_SCHEMA_VERSION - 1
        );
        assert!(
            crate::store::Store::new(&dir).path_of(current).exists(),
            "recomputed point must be stored under the current-version key"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_sweep_runs_every_scheme() {
        for id in crate::registry::ALL_SCHEMES {
            let r = sweep(id, SyntheticPattern::Uniform, &[0.02], 4, 2, 200, 500, 1);
            assert_eq!(r.points.len(), 1, "{}", id.name());
            assert!(r.points[0].delivered > 0, "{} delivered nothing", id.name());
        }
    }
}
