//! Sweep runners and result emission.

use crate::registry::SchemeId;
use noc_sim::Simulation;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use traffic::{SyntheticPattern, SyntheticWorkload};

/// Reads a `u64` knob from the environment with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One point of a latency-vs-injection-rate curve (Fig. 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyPoint {
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Average end-to-end packet latency (cycles).
    pub avg_latency: f64,
    /// Accepted throughput (packets/node/cycle).
    pub throughput: f64,
    /// Packets delivered in the measurement window.
    pub delivered: u64,
    /// Fraction delivered as FastPass-Packets (0 for baselines).
    pub fastpass_fraction: f64,
    /// Fraction of generated packets dropped (FastPass bubble).
    pub dropped_fraction: f64,
}

/// A full sweep for one scheme on one pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Scheme name.
    pub scheme: String,
    /// Pattern name.
    pub pattern: String,
    /// Mesh edge length.
    pub size: usize,
    /// Points in rate order.
    pub points: Vec<LatencyPoint>,
}

impl SweepResult {
    /// The saturation rate: the first offered rate whose latency exceeds
    /// `3 ×` the first point's latency (the standard definition used in
    /// Figs. 7/8), or the last rate if it never saturates in range.
    pub fn saturation_rate(&self) -> f64 {
        let zero_load = self.points.first().map(|p| p.avg_latency).unwrap_or(0.0);
        for w in self.points.windows(2) {
            if w[1].avg_latency > 3.0 * zero_load || !w[1].avg_latency.is_finite() {
                return w[0].rate;
            }
        }
        self.points.last().map(|p| p.rate).unwrap_or(0.0)
    }
}

/// Builds a fresh simulation for a scheme/pattern/rate triple at the
/// Table II configuration.
pub fn make_sim(
    id: SchemeId,
    pattern: SyntheticPattern,
    rate: f64,
    size: usize,
    fp_vcs: usize,
    seed: u64,
) -> Simulation {
    let cfg = id.sim_config(size, fp_vcs, seed);
    let scheme = id.build(&cfg, seed);
    let workload = SyntheticWorkload::new(pattern, rate, seed ^ 0x17AFF1C);
    Simulation::new(cfg, scheme, Box::new(workload))
}

/// Runs a latency-vs-rate sweep.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    id: SchemeId,
    pattern: SyntheticPattern,
    rates: &[f64],
    size: usize,
    fp_vcs: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> SweepResult {
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let mut sim = make_sim(id, pattern, rate, size, fp_vcs, seed);
        let stats = sim.run_windows(warmup, measure);
        points.push(LatencyPoint {
            rate,
            avg_latency: stats.avg_latency(),
            throughput: stats.throughput_packets(),
            delivered: stats.delivered(),
            fastpass_fraction: stats.fastpass_fraction(),
            dropped_fraction: stats.dropped_fraction(),
        });
    }
    SweepResult {
        scheme: id.name().to_string(),
        pattern: pattern.name().to_string(),
        size,
        points,
    }
}

/// Writes a serializable result into `$FP_OUT/<name>.json` (default
/// `results/`), creating the directory as needed. Returns the path.
pub fn emit_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = std::env::var("FP_OUT").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&dir)?;
    let path = PathBuf::from(dir).join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_u64_parses_and_defaults() {
        std::env::remove_var("FP_TEST_KNOB_XYZ");
        assert_eq!(env_u64("FP_TEST_KNOB_XYZ", 7), 7);
        std::env::set_var("FP_TEST_KNOB_XYZ", "42");
        assert_eq!(env_u64("FP_TEST_KNOB_XYZ", 7), 42);
        std::env::set_var("FP_TEST_KNOB_XYZ", "junk");
        assert_eq!(env_u64("FP_TEST_KNOB_XYZ", 7), 7);
        std::env::remove_var("FP_TEST_KNOB_XYZ");
    }

    #[test]
    fn saturation_rate_detects_knee() {
        let mk = |rate: f64, lat: f64| LatencyPoint {
            rate,
            avg_latency: lat,
            throughput: rate,
            delivered: 100,
            fastpass_fraction: 0.0,
            dropped_fraction: 0.0,
        };
        let r = SweepResult {
            scheme: "x".into(),
            pattern: "y".into(),
            size: 8,
            points: vec![mk(0.1, 10.0), mk(0.2, 12.0), mk(0.3, 50.0), mk(0.4, 500.0)],
        };
        assert_eq!(r.saturation_rate(), 0.2);
    }

    #[test]
    fn small_sweep_runs_every_scheme() {
        for id in crate::registry::ALL_SCHEMES {
            let r = sweep(
                id,
                SyntheticPattern::Uniform,
                &[0.02],
                4,
                2,
                200,
                500,
                1,
            );
            assert_eq!(r.points.len(), 1, "{}", id.name());
            assert!(r.points[0].delivered > 0, "{} delivered nothing", id.name());
        }
    }
}
