//! Shared writer for `BENCH_*.json` benchmark reports.
//!
//! Every benchmark report carries the same correlation header —
//! `bench`, `schema_version`, `git_sha` — so `perfwatch` (and humans
//! diffing reports across commits) can line runs up without parsing
//! free-text labels. Benchmarks build a [`BenchReport`], append their
//! own fields in order, and either [`write`](BenchReport::write) the
//! canonical `BENCH_<name>.json` file or print
//! [`to_json_pretty`](BenchReport::to_json_pretty) to stdout.

use serde::Content;
use std::path::PathBuf;

/// Version of the `BENCH_*.json` header contract. Bump when the header
/// fields change meaning; benchmark-specific payload fields are owned by
/// each benchmark.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The current commit hash for report stamping.
///
/// Resolution order: `GIT_SHA`, then `GITHUB_SHA` (set by CI), then
/// `git rev-parse HEAD`, then the literal `"unknown"` — a report from a
/// tarball checkout is still valid, just uncorrelated.
pub fn git_sha() -> String {
    for var in ["GIT_SHA", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_string();
            if !v.is_empty() {
                return v;
            }
        }
    }
    let out = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output();
    if let Ok(out) = out {
        if out.status.success() {
            if let Ok(s) = String::from_utf8(out.stdout) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
        }
    }
    "unknown".to_string()
}

/// An ordered JSON benchmark report with the standard header.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    fields: Vec<(String, Content)>,
}

impl BenchReport {
    /// Starts a report for benchmark `name`, stamping the header
    /// (`bench`, `schema_version`, `git_sha`).
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            fields: vec![
                ("bench".to_string(), Content::Str(name.to_string())),
                (
                    "schema_version".to_string(),
                    Content::U128(BENCH_SCHEMA_VERSION as u128),
                ),
                ("git_sha".to_string(), Content::Str(git_sha())),
            ],
        }
    }

    /// Appends an arbitrary field (order is preserved in the output).
    pub fn push(&mut self, key: &str, value: Content) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends a string field.
    pub fn push_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.push(key, Content::Str(value.to_string()))
    }

    /// Appends an unsigned integer field.
    pub fn push_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.push(key, Content::U128(value as u128))
    }

    /// Appends a float field.
    pub fn push_f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.push(key, Content::F64(value))
    }

    /// The report as a pretty-printed JSON object.
    pub fn to_json_pretty(&self) -> String {
        let doc = Content::Map(self.fields.clone());
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
    }

    /// Writes `BENCH_<name>.json` into `dir` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_comes_first_and_is_complete() {
        let mut r = BenchReport::new("unit");
        r.push_u64("total", 42)
            .push_f64("rate", 0.5)
            .push_str("k", "v");
        let json = r.to_json_pretty();
        let doc: Content = serde_json::from_str(&json).expect("valid JSON");
        let map = doc.as_map().expect("object");
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["bench", "schema_version", "git_sha", "total", "rate", "k"]
        );
        assert_eq!(
            serde::field(map, "schema_version").expect("field").as_u64(),
            Some(BENCH_SCHEMA_VERSION as u64)
        );
        assert_eq!(
            serde::field(map, "bench").expect("field").as_str(),
            Some("unit")
        );
        let sha = serde::field(map, "git_sha").expect("field").as_str();
        assert!(sha.is_some_and(|s| !s.is_empty()));
    }

    #[test]
    fn git_sha_honors_env_override() {
        // Avoid mutating this process's env (other tests run in
        // parallel): just assert the fallback chain produces something.
        let sha = git_sha();
        assert!(!sha.is_empty());
    }

    #[test]
    fn write_creates_canonical_filename() {
        let dir = std::env::temp_dir().join(format!("fp_bench_out_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = BenchReport::new("writer_test").write(&dir).expect("write");
        assert!(path.ends_with("BENCH_writer_test.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"git_sha\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
