//! Perf-history bookkeeping for the `perfwatch` regression gate.
//!
//! `perfwatch` (the binary) measures the shared hot-path sweep
//! ([`crate::hotbench`]) and appends one row per metric to an
//! append-only JSONL history file (`results/perf_history.jsonl` by
//! default, one JSON object per line). Before appending, it compares
//! the fresh measurement against the most recent prior row for the same
//! `(bench, metric)` pair and fails the build when a
//! higher-is-better metric regressed by more than the threshold.
//!
//! The file format is JSONL rather than a single JSON document so CI
//! can append with plain redirection, partial writes damage at most one
//! line, and `git log`-style tooling (grep, tail) works directly.

use serde::Content;
use std::io::Write as _;
use std::path::Path;

/// Default regression threshold: fail when the metric drops more than
/// this fraction below the baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One measurement row in the perf history.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Commit the measurement was taken at.
    pub git_sha: String,
    /// Benchmark name (e.g. `"hotpath"`).
    pub bench_name: String,
    /// Metric name (e.g. `"cycles_per_sec"`). Higher is better.
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

impl PerfRow {
    /// The row as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let doc = Content::Map(vec![
            ("git_sha".to_string(), Content::Str(self.git_sha.clone())),
            ("bench".to_string(), Content::Str(self.bench_name.clone())),
            ("metric".to_string(), Content::Str(self.metric.clone())),
            ("value".to_string(), Content::F64(self.value)),
        ]);
        serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
    }

    fn from_content(doc: &Content) -> Option<PerfRow> {
        let map = doc.as_map()?;
        let text = |k: &str| {
            serde::field(map, k)
                .ok()
                .and_then(Content::as_str)
                .map(str::to_string)
        };
        let value = match serde::field(map, "value").ok()? {
            Content::F64(v) => *v,
            Content::U128(v) => *v as f64,
            Content::I128(v) => *v as f64,
            _ => return None,
        };
        Some(PerfRow {
            git_sha: text("git_sha")?,
            bench_name: text("bench")?,
            metric: text("metric")?,
            value,
        })
    }
}

/// Parses a JSONL history document. Unparseable lines are skipped (the
/// history survives a corrupted line) and blank lines are ignored.
pub fn parse_history(text: &str) -> Vec<PerfRow> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<Content>(l).ok())
        .filter_map(|doc| PerfRow::from_content(&doc))
        .collect()
}

/// Loads the history file; a missing file is an empty history.
///
/// # Errors
///
/// Propagates read errors other than `NotFound`.
pub fn load_history(path: &Path) -> std::io::Result<Vec<PerfRow>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(parse_history(&text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

/// Appends one row to the history file, creating parent directories as
/// needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_row(path: &Path, row: &PerfRow) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", row.to_json_line())
}

/// The most recent prior row for `(bench, metric)` — the baseline a
/// fresh measurement is judged against. Rows from the same commit also
/// count (re-running on one commit compares against the first run,
/// which must pass: same code, same speed).
pub fn baseline_for<'a>(history: &'a [PerfRow], bench: &str, metric: &str) -> Option<&'a PerfRow> {
    history
        .iter()
        .rev()
        .find(|r| r.bench_name == bench && r.metric == metric)
}

/// Outcome of comparing a fresh measurement against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No prior row — this run records the first baseline.
    NoBaseline,
    /// Within threshold (or an improvement). `ratio` is new/old.
    Ok {
        /// Baseline value the measurement was compared against.
        baseline: f64,
        /// `new / old`; 1.0 means unchanged, >1.0 an improvement.
        ratio: f64,
    },
    /// Regressed more than the threshold below baseline.
    Regression {
        /// Baseline value the measurement was compared against.
        baseline: f64,
        /// `new / old`, below `1.0 - threshold`.
        ratio: f64,
    },
}

impl Verdict {
    /// True when this verdict should fail the build.
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regression { .. })
    }
}

/// Judges `value` against the most recent baseline in `history` for a
/// higher-is-better metric. A non-finite or non-positive baseline is
/// treated as absent (it cannot anchor a ratio).
pub fn judge(
    history: &[PerfRow],
    bench: &str,
    metric: &str,
    value: f64,
    threshold: f64,
) -> Verdict {
    match baseline_for(history, bench, metric) {
        Some(b) if b.value.is_finite() && b.value > 0.0 => {
            let ratio = value / b.value;
            if ratio < 1.0 - threshold {
                Verdict::Regression {
                    baseline: b.value,
                    ratio,
                }
            } else {
                Verdict::Ok {
                    baseline: b.value,
                    ratio,
                }
            }
        }
        _ => Verdict::NoBaseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(sha: &str, value: f64) -> PerfRow {
        PerfRow {
            git_sha: sha.to_string(),
            bench_name: "hotpath".to_string(),
            metric: "cycles_per_sec".to_string(),
            value,
        }
    }

    #[test]
    fn rows_round_trip_through_jsonl() {
        let rows = [row("aaa", 250_000.0), row("bbb", 260_000.5)];
        let text = rows
            .iter()
            .map(PerfRow::to_json_line)
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_history(&text);
        assert_eq!(parsed, rows);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let text = format!(
            "{}\nnot json at all\n\n{}",
            row("a", 1.0).to_json_line(),
            row("b", 2.0).to_json_line()
        );
        let parsed = parse_history(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].git_sha, "b");
    }

    #[test]
    fn baseline_is_most_recent_matching_row() {
        let mut history = vec![row("old", 100.0), row("new", 200.0)];
        history.push(PerfRow {
            metric: "other".to_string(),
            ..row("newest", 7.0)
        });
        let b = baseline_for(&history, "hotpath", "cycles_per_sec").expect("baseline");
        assert_eq!(b.git_sha, "new");
        assert!(baseline_for(&history, "hotpath", "missing").is_none());
    }

    #[test]
    fn judge_passes_same_commit_rerun_and_fails_injected_slowdown() {
        let history = vec![row("base", 300_000.0)];
        // Re-run on the same commit: tiny jitter either way is fine.
        assert!(!judge(&history, "hotpath", "cycles_per_sec", 298_000.0, 0.10).is_regression());
        assert!(!judge(&history, "hotpath", "cycles_per_sec", 310_000.0, 0.10).is_regression());
        // Injected 15% slowdown fixture: must fail a 10% gate.
        let v = judge(&history, "hotpath", "cycles_per_sec", 255_000.0, 0.10);
        assert!(v.is_regression(), "{v:?}");
        if let Verdict::Regression { baseline, ratio } = v {
            assert_eq!(baseline, 300_000.0);
            assert!((ratio - 0.85).abs() < 1e-9);
        }
        // Exactly at the 10% boundary passes (strict inequality).
        assert!(!judge(&history, "hotpath", "cycles_per_sec", 270_000.0, 0.10).is_regression());
        // No baseline.
        assert_eq!(
            judge(&[], "hotpath", "cycles_per_sec", 1.0, 0.10),
            Verdict::NoBaseline
        );
    }

    #[test]
    fn append_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("fp_perfwatch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("perf_history.jsonl");
        assert!(load_history(&path)
            .expect("missing file is empty")
            .is_empty());
        append_row(&path, &row("a", 1.5)).expect("append");
        append_row(&path, &row("b", 2.5)).expect("append");
        let loaded = load_history(&path).expect("load");
        assert_eq!(loaded, vec![row("a", 1.5), row("b", 2.5)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
