//! Seeded fault-config generation: deterministic disabled-link sets.
//!
//! ROADMAP item 4(a)'s fault sweeps and the `noc-prove` certifier both
//! need the *same* degraded topologies: a sweep must only simulate
//! configurations that were certified routable and deadlock-free, so the
//! fault set has to be a pure function of `(mesh, seed, count)` that
//! both sides can regenerate independently. This module provides that
//! function. A fault disables one *bidirectional channel* (both opposing
//! directed links), mirroring how a broken wire takes out the whole
//! lane pair; configurations that would disconnect the mesh are rejected
//! during sampling, so every returned fault set leaves all nodes
//! mutually reachable.

use crate::rng::DetRng;
use crate::topology::{Direction, Mesh, NodeId};

/// A disabled bidirectional channel, canonically ordered
/// `(min_node, max_node)` by row-major index.
pub type DisabledChannel = (usize, usize);

/// A deterministic fault configuration: `count` disabled channels drawn
/// from `(seed, count)` on a mesh, guaranteed connected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// The mesh the faults apply to.
    pub mesh: Mesh,
    /// The generator seed.
    pub seed: u64,
    /// Disabled channels, sorted canonically.
    pub disabled: Vec<DisabledChannel>,
}

impl FaultConfig {
    /// Short stable name for certificates, cache keys and CI logs.
    pub fn name(&self) -> String {
        format!(
            "fault-{}x{}-s{}-k{}",
            self.mesh.width(),
            self.mesh.height(),
            self.seed,
            self.disabled.len()
        )
    }

    /// Whether the channel between `a` and its neighbour in `d` is
    /// disabled.
    pub fn is_disabled(&self, a: NodeId, d: Direction) -> bool {
        match self.mesh.neighbor(a, d) {
            Some(b) => {
                let ch = canonical(a.index(), b.index());
                self.disabled.binary_search(&ch).is_ok()
            }
            None => false,
        }
    }

    /// Surviving bidirectional channels as canonical node pairs.
    pub fn surviving_channels(&self) -> Vec<DisabledChannel> {
        all_channels(self.mesh)
            .into_iter()
            .filter(|ch| self.disabled.binary_search(ch).is_err())
            .collect()
    }
}

fn canonical(a: usize, b: usize) -> DisabledChannel {
    (a.min(b), a.max(b))
}

/// Every bidirectional channel of a mesh as canonical node pairs,
/// sorted.
pub fn all_channels(mesh: Mesh) -> Vec<DisabledChannel> {
    let mut v = Vec::new();
    for n in mesh.nodes() {
        for d in [Direction::East, Direction::South] {
            if let Some(nb) = mesh.neighbor(n, d) {
                v.push(canonical(n.index(), nb.index()));
            }
        }
    }
    v.sort_unstable();
    v
}

/// Whether the mesh stays connected with `disabled` channels removed
/// (`disabled` must be sorted; [`generate`] maintains this).
pub fn is_connected_without(mesh: Mesh, disabled: &[DisabledChannel]) -> bool {
    let n = mesh.num_nodes();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut reached = 1usize;
    while let Some(v) = stack.pop() {
        let node = NodeId::new(v);
        for d in crate::topology::DIRECTIONS {
            let Some(nb) = mesh.neighbor(node, d) else {
                continue;
            };
            let w = nb.index();
            if seen[w] || disabled.binary_search(&canonical(v, w)).is_ok() {
                continue;
            }
            seen[w] = true;
            reached += 1;
            stack.push(w);
        }
    }
    reached == n
}

/// Error from [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultGenError {
    /// `count` is at least the number of channels in the mesh.
    TooManyFaults,
    /// No connected configuration was found within the sampling budget
    /// (the requested count leaves too little spare connectivity).
    BudgetExhausted,
}

impl std::fmt::Display for FaultGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultGenError::TooManyFaults => f.write_str("more faults requested than channels"),
            FaultGenError::BudgetExhausted => {
                f.write_str("no connected fault configuration found within the sampling budget")
            }
        }
    }
}

impl std::error::Error for FaultGenError {}

/// Draws a deterministic set of `count` disabled channels for
/// `(mesh, seed)`, rejecting draws that disconnect the mesh.
///
/// Channels are sampled one at a time; a draw that would disconnect the
/// remaining topology is discarded and redrawn, so the generator walks a
/// connected-preserving path through fault space and the result is a
/// pure function of its arguments. Sampling is bounded (64 rejected
/// draws per accepted channel) so pathological requests fail loudly
/// instead of spinning.
///
/// # Errors
///
/// [`FaultGenError::TooManyFaults`] when `count` cannot leave a spanning
/// tree; [`FaultGenError::BudgetExhausted`] when the rejection budget
/// runs out.
pub fn generate(mesh: Mesh, seed: u64, count: usize) -> Result<FaultConfig, FaultGenError> {
    let channels = all_channels(mesh);
    // A connected graph on n nodes needs at least n−1 channels.
    if channels.len().saturating_sub(count) < mesh.num_nodes().saturating_sub(1) {
        return Err(FaultGenError::TooManyFaults);
    }
    let mut rng = DetRng::new(seed ^ 0x000F_A017_C0DE);
    let mut disabled: Vec<DisabledChannel> = Vec::with_capacity(count);
    let mut budget = 64usize * count.max(1);
    while disabled.len() < count {
        let candidate = channels[rng.range(0, channels.len())];
        if disabled.binary_search(&candidate).is_ok() {
            continue; // already disabled; costs no budget
        }
        let pos = disabled
            .binary_search(&candidate)
            .expect_err("candidate verified absent above");
        disabled.insert(pos, candidate);
        if !is_connected_without(mesh, &disabled) {
            disabled.remove(pos);
            budget = match budget.checked_sub(1) {
                Some(b) => b,
                None => return Err(FaultGenError::BudgetExhausted),
            };
        }
    }
    Ok(FaultConfig {
        mesh,
        seed,
        disabled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let mesh = Mesh::new(4, 4);
        let a = generate(mesh, 7, 3).unwrap();
        let b = generate(mesh, 7, 3).unwrap();
        assert_eq!(a, b);
        let c = generate(mesh, 8, 3).unwrap();
        assert_ne!(a.disabled, c.disabled, "different seeds must differ");
    }

    #[test]
    fn generated_configs_stay_connected() {
        for seed in 0..20 {
            for count in [1, 2, 4, 6] {
                let cfg = generate(Mesh::new(4, 4), seed, count).unwrap();
                assert_eq!(cfg.disabled.len(), count);
                assert!(
                    is_connected_without(cfg.mesh, &cfg.disabled),
                    "seed {seed} count {count} disconnected"
                );
            }
        }
    }

    #[test]
    fn disabled_channels_are_canonical_and_sorted() {
        let cfg = generate(Mesh::new(5, 5), 3, 5).unwrap();
        for &(a, b) in &cfg.disabled {
            assert!(a < b);
        }
        let mut sorted = cfg.disabled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, cfg.disabled);
    }

    #[test]
    fn is_disabled_matches_the_set() {
        let mesh = Mesh::new(4, 4);
        let cfg = generate(mesh, 11, 4).unwrap();
        let mut hits = 0;
        for n in mesh.nodes() {
            for d in crate::topology::DIRECTIONS {
                if cfg.is_disabled(n, d) {
                    hits += 1;
                }
            }
        }
        // Each disabled channel is seen from both endpoints.
        assert_eq!(hits, 2 * cfg.disabled.len());
    }

    #[test]
    fn surviving_plus_disabled_partition_all_channels() {
        let mesh = Mesh::new(4, 4);
        let cfg = generate(mesh, 2, 3).unwrap();
        let mut union = cfg.surviving_channels();
        union.extend_from_slice(&cfg.disabled);
        union.sort_unstable();
        assert_eq!(union, all_channels(mesh));
    }

    #[test]
    fn impossible_request_rejected() {
        // 2×2 has 4 channels and needs 3 for a spanning tree.
        assert_eq!(
            generate(Mesh::new(2, 2), 1, 2),
            Err(FaultGenError::TooManyFaults)
        );
        assert!(generate(Mesh::new(2, 2), 1, 1).is_ok());
    }

    #[test]
    fn channel_count_formula() {
        // w×h mesh: (w−1)·h + w·(h−1) bidirectional channels.
        assert_eq!(all_channels(Mesh::new(4, 4)).len(), 3 * 4 + 4 * 3);
        assert_eq!(all_channels(Mesh::new(2, 2)).len(), 4);
    }
}
