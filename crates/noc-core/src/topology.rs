//! Mesh topology, node/port arithmetic and directed-link identifiers.
//!
//! The paper evaluates FastPass on 4×4, 8×8 and 16×16 meshes (Table II).
//! Coordinates follow the paper's figures: `x` is the column (partition
//! index), `y` is the row, row 0 at the top. [`Direction::East`] increases
//! `x`, [`Direction::South`] increases `y`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a router / network-interface pair in the network.
///
/// Nodes are numbered row-major: `id = y * width + x`, matching the
/// numbering of Fig. 1 in the paper (R0..R8 on the 3×3 mesh).
///
/// # Example
///
/// ```
/// use noc_core::topology::{Mesh, NodeId};
/// let m = Mesh::new(3, 3);
/// assert_eq!(m.node(1, 2), NodeId::new(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from its raw row-major index.
    pub fn new(raw: usize) -> Self {
        debug_assert!(raw <= u16::MAX as usize, "node index out of range");
        NodeId(raw as u16)
    }

    /// Raw row-major index, suitable for indexing per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(n: NodeId) -> usize {
        n.index()
    }
}

/// One of the four mesh directions.
///
/// The discriminants are stable and used to index per-direction arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Decreasing `y` (toward row 0).
    North = 0,
    /// Increasing `y`.
    South = 1,
    /// Increasing `x`.
    East = 2,
    /// Decreasing `x` (toward column 0).
    West = 3,
}

/// All four directions in index order (`North`, `South`, `East`, `West`).
pub const DIRECTIONS: [Direction; 4] = [
    Direction::North,
    Direction::South,
    Direction::East,
    Direction::West,
];

impl Direction {
    /// Stable index in `0..4`, matching [`DIRECTIONS`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Direction of travel that undoes this one.
    ///
    /// ```
    /// use noc_core::topology::Direction;
    /// assert_eq!(Direction::East.opposite(), Direction::West);
    /// ```
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// Reconstructs a direction from its stable index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: usize) -> Direction {
        DIRECTIONS[i]
    }

    /// Whether travel in this direction changes the `x` coordinate.
    pub fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

/// A router port: one of the four direction ports or the local
/// (injection/ejection) port attached to the network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Port to/from a neighbouring router.
    Dir(Direction),
    /// Port to/from the local network interface.
    Local,
}

/// Number of distinct router ports (4 directions + local).
pub const NUM_PORTS: usize = 5;

impl Port {
    /// Stable index in `0..5`: the four directions then `Local`.
    pub fn index(self) -> usize {
        match self {
            Port::Dir(d) => d.index(),
            Port::Local => 4,
        }
    }

    /// Reconstructs a port from its stable index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 5`.
    pub fn from_index(i: usize) -> Port {
        if i < 4 {
            Port::Dir(Direction::from_index(i))
        } else if i == 4 {
            Port::Local
        } else {
            panic!("port index {i} out of range")
        }
    }

    /// All five ports in index order.
    pub fn all() -> [Port; NUM_PORTS] {
        [
            Port::Dir(Direction::North),
            Port::Dir(Direction::South),
            Port::Dir(Direction::East),
            Port::Dir(Direction::West),
            Port::Local,
        ]
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Dir(d) => write!(f, "{d}"),
            Port::Local => f.write_str("L"),
        }
    }
}

/// Identifier of a *directed* physical link `(from, direction)`.
///
/// A bidirectional channel between adjacent routers consists of two
/// opposing directed links with distinct `LinkId`s — this distinction is
/// what makes the FastPass outbound lanes and returning paths provably
/// non-overlapping (§III-E of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(u32);

impl LinkId {
    /// Builds a link id from its dense index (the inverse of
    /// [`LinkId::index`], in [`Mesh::link`]'s `from * 4 + direction`
    /// numbering).
    pub fn new(raw: usize) -> Self {
        LinkId(raw as u32)
    }

    /// Dense index usable for per-link vectors of size [`Mesh::num_links`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A `width × height` 2D mesh.
///
/// This is the concrete topology used by the simulator. All routing
/// functions, the FastPass partition/lane construction and the baseline
/// schemes are defined in terms of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh with the given number of columns and rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh would exceed
    /// `u16::MAX` nodes.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(width * height <= u16::MAX as usize, "mesh too large");
        Mesh {
            width: width as u16,
            height: height as u16,
        }
    }

    /// Number of columns (also the number of FastPass partitions `P`).
    pub fn width(self) -> usize {
        self.width as usize
    }

    /// Number of rows.
    pub fn height(self) -> usize {
        self.height as usize
    }

    /// Total number of nodes.
    pub fn num_nodes(self) -> usize {
        self.width() * self.height()
    }

    /// Number of directed-link slots (`4 × num_nodes`; edge slots that
    /// leave the mesh are never produced by [`Mesh::link`]).
    pub fn num_links(self) -> usize {
        4 * self.num_nodes()
    }

    /// Node at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinates are out of range.
    pub fn node(self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.width(), "x={x} out of range");
        debug_assert!(y < self.height(), "y={y} out of range");
        NodeId::new(y * self.width() + x)
    }

    /// Column of `n` (the FastPass partition it belongs to).
    pub fn x(self, n: NodeId) -> usize {
        n.index() % self.width()
    }

    /// Row of `n`.
    pub fn y(self, n: NodeId) -> usize {
        n.index() / self.width()
    }

    /// Iterator over all node ids in row-major order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId::new)
    }

    /// The neighbour of `n` in direction `d`, or `None` at a mesh edge.
    pub fn neighbor(self, n: NodeId, d: Direction) -> Option<NodeId> {
        let (x, y) = (self.x(n), self.y(n));
        match d {
            Direction::North if y > 0 => Some(self.node(x, y - 1)),
            Direction::South if y + 1 < self.height() => Some(self.node(x, y + 1)),
            Direction::East if x + 1 < self.width() => Some(self.node(x + 1, y)),
            Direction::West if x > 0 => Some(self.node(x - 1, y)),
            _ => None,
        }
    }

    /// The directed link leaving `n` in direction `d`, or `None` at an edge.
    pub fn link(self, n: NodeId, d: Direction) -> Option<LinkId> {
        self.neighbor(n, d)
            .map(|_| LinkId((n.index() * 4 + d.index()) as u32))
    }

    /// Decomposes a link id back into `(from, direction)`.
    pub fn link_endpoints(self, l: LinkId) -> (NodeId, Direction) {
        (
            NodeId::new(l.index() / 4),
            Direction::from_index(l.index() % 4),
        )
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(self, a: NodeId, b: NodeId) -> usize {
        self.x(a).abs_diff(self.x(b)) + self.y(a).abs_diff(self.y(b))
    }

    /// Network diameter (maximum minimal hop count between any pair).
    pub fn diameter(self) -> usize {
        self.width() - 1 + self.height() - 1
    }

    /// Minimal productive directions from `from` toward `to`.
    ///
    /// Returns zero, one or two directions: the horizontal correction (if
    /// any) followed by the vertical correction (if any). An empty result
    /// means `from == to`.
    pub fn productive_dirs(self, from: NodeId, to: NodeId) -> ProductiveDirs {
        let mut dirs = ProductiveDirs::default();
        let (fx, fy) = (self.x(from), self.y(from));
        let (tx, ty) = (self.x(to), self.y(to));
        if tx > fx {
            dirs.push(Direction::East);
        } else if tx < fx {
            dirs.push(Direction::West);
        }
        if ty > fy {
            dirs.push(Direction::South);
        } else if ty < fy {
            dirs.push(Direction::North);
        }
        dirs
    }

    /// Next hop under dimension-ordered XY routing (X first, then Y).
    ///
    /// Returns `None` when `from == to`. XY routing is what FastPass-Lanes
    /// use outbound (§III-E).
    pub fn xy_next(self, from: NodeId, to: NodeId) -> Option<Direction> {
        let (fx, fy) = (self.x(from), self.y(from));
        let (tx, ty) = (self.x(to), self.y(to));
        if tx > fx {
            Some(Direction::East)
        } else if tx < fx {
            Some(Direction::West)
        } else if ty > fy {
            Some(Direction::South)
        } else if ty < fy {
            Some(Direction::North)
        } else {
            None
        }
    }

    /// Next hop under dimension-ordered YX routing (Y first, then X).
    ///
    /// Returning paths of rejected FastPass-Packets use YX (§III-E).
    pub fn yx_next(self, from: NodeId, to: NodeId) -> Option<Direction> {
        let (fx, fy) = (self.x(from), self.y(from));
        let (tx, ty) = (self.x(to), self.y(to));
        if ty > fy {
            Some(Direction::South)
        } else if ty < fy {
            Some(Direction::North)
        } else if tx > fx {
            Some(Direction::East)
        } else if tx < fx {
            Some(Direction::West)
        } else {
            None
        }
    }

    /// The full XY path from `from` to `to` as the sequence of nodes
    /// visited, including both endpoints.
    pub fn xy_path(self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        self.path_by(from, to, |cur| self.xy_next(cur, to))
    }

    /// The full YX path from `from` to `to`, including both endpoints.
    pub fn yx_path(self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        self.path_by(from, to, |cur| self.yx_next(cur, to))
    }

    fn path_by(
        self,
        from: NodeId,
        to: NodeId,
        mut next: impl FnMut(NodeId) -> Option<Direction>,
    ) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            let d = next(cur).expect("routing function stalled before destination");
            cur = self.neighbor(cur, d).expect("routing left the mesh");
            path.push(cur);
        }
        path
    }
}

/// Up to two minimal productive directions (see [`Mesh::productive_dirs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProductiveDirs {
    dirs: [Option<Direction>; 2],
    len: u8,
}

impl ProductiveDirs {
    fn push(&mut self, d: Direction) {
        self.dirs[self.len as usize] = Some(d);
        self.len += 1;
    }

    /// Builds the productive set from coordinate deltas (`to − from`),
    /// with the same ordering as [`Mesh::productive_dirs`]: the
    /// horizontal correction (if any) followed by the vertical one.
    /// Lets callers holding cached coordinates skip the per-call
    /// index-to-coordinate division.
    pub fn from_deltas(dx: isize, dy: isize) -> ProductiveDirs {
        let mut dirs = ProductiveDirs::default();
        if dx > 0 {
            dirs.push(Direction::East);
        } else if dx < 0 {
            dirs.push(Direction::West);
        }
        if dy > 0 {
            dirs.push(Direction::South);
        } else if dy < 0 {
            dirs.push(Direction::North);
        }
        dirs
    }

    /// Number of productive directions (0, 1 or 2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the source already is the destination.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over the directions.
    pub fn iter(&self) -> impl Iterator<Item = Direction> + '_ {
        self.dirs.iter().take(self.len()).flatten().copied()
    }

    /// Whether `d` is one of the productive directions.
    pub fn contains(&self, d: Direction) -> bool {
        self.iter().any(|x| x == d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coordinates_roundtrip() {
        let m = Mesh::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                let n = m.node(x, y);
                assert_eq!(m.x(n), x);
                assert_eq!(m.y(n), y);
            }
        }
    }

    #[test]
    fn fig1_numbering_matches_paper() {
        // Fig. 1 of the paper: 3×3 mesh, R0..R2 top row, R6..R8 bottom row.
        let m = Mesh::new(3, 3);
        assert_eq!(m.node(0, 0), NodeId::new(0));
        assert_eq!(m.node(2, 0), NodeId::new(2));
        assert_eq!(m.node(0, 2), NodeId::new(6));
        assert_eq!(m.node(2, 2), NodeId::new(8));
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = Mesh::new(4, 4);
        let corner = m.node(0, 0);
        assert_eq!(m.neighbor(corner, Direction::North), None);
        assert_eq!(m.neighbor(corner, Direction::West), None);
        assert_eq!(m.neighbor(corner, Direction::East), Some(m.node(1, 0)));
        assert_eq!(m.neighbor(corner, Direction::South), Some(m.node(0, 1)));
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Mesh::new(5, 3);
        for n in m.nodes() {
            for d in DIRECTIONS {
                if let Some(nb) = m.neighbor(n, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn links_are_unique_and_decodable() {
        let m = Mesh::new(4, 5);
        let mut seen = std::collections::HashSet::new();
        for n in m.nodes() {
            for d in DIRECTIONS {
                if let Some(l) = m.link(n, d) {
                    assert!(seen.insert(l), "duplicate link id {l}");
                    assert_eq!(m.link_endpoints(l), (n, d));
                    assert!(l.index() < m.num_links());
                }
            }
        }
        // A w×h mesh has 2·(w−1)·h + 2·w·(h−1) directed links.
        assert_eq!(seen.len(), 2 * 3 * 5 + 2 * 4 * 4);
    }

    #[test]
    fn opposite_links_differ() {
        let m = Mesh::new(3, 3);
        let a = m.node(0, 0);
        let b = m.node(1, 0);
        let ab = m.link(a, Direction::East).unwrap();
        let ba = m.link(b, Direction::West).unwrap();
        assert_ne!(ab, ba, "opposing unidirectional links must be distinct");
    }

    #[test]
    fn hops_and_diameter() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.diameter(), 14);
        assert_eq!(m.hops(m.node(0, 0), m.node(7, 7)), 14);
        assert_eq!(m.hops(m.node(3, 3), m.node(3, 3)), 0);
    }

    #[test]
    fn xy_and_yx_paths_are_minimal_and_distinct() {
        let m = Mesh::new(6, 6);
        let a = m.node(1, 4);
        let b = m.node(4, 1);
        let xy = m.xy_path(a, b);
        let yx = m.yx_path(a, b);
        assert_eq!(xy.len(), m.hops(a, b) + 1);
        assert_eq!(yx.len(), m.hops(a, b) + 1);
        assert_eq!(xy.first(), Some(&a));
        assert_eq!(xy.last(), Some(&b));
        assert_ne!(xy, yx, "XY and YX must differ off-axis");
    }

    #[test]
    fn xy_path_degenerate_cases() {
        let m = Mesh::new(4, 4);
        let a = m.node(2, 2);
        assert_eq!(m.xy_path(a, a), vec![a]);
        assert_eq!(m.xy_next(a, a), None);
        assert_eq!(m.yx_next(a, a), None);
    }

    #[test]
    fn productive_dirs_cover_quadrants() {
        let m = Mesh::new(8, 8);
        let c = m.node(4, 4);
        let ne = m.node(6, 2);
        let dirs = m.productive_dirs(c, ne);
        assert_eq!(dirs.len(), 2);
        assert!(dirs.contains(Direction::East));
        assert!(dirs.contains(Direction::North));
        assert!(!dirs.contains(Direction::South));

        let same_col = m.node(4, 7);
        let dirs = m.productive_dirs(c, same_col);
        assert_eq!(dirs.len(), 1);
        assert!(dirs.contains(Direction::South));

        assert!(m.productive_dirs(c, c).is_empty());
    }

    #[test]
    fn port_indexing_roundtrip() {
        for (i, p) in Port::all().into_iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Port::from_index(i), p);
        }
    }

    #[test]
    fn direction_opposite_is_involutive() {
        for d in DIRECTIONS {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    #[should_panic]
    fn port_index_out_of_range_panics() {
        let _ = Port::from_index(5);
    }
}
