//! Deterministic randomness for reproducible simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A small, fast, seedable RNG wrapper.
///
/// Every simulation component derives its randomness from one of these so
/// that runs are bit-reproducible for a given [`SimConfig::seed`].
///
/// [`SimConfig::seed`]: crate::config::SimConfig::seed
///
/// # Example
///
/// ```
/// use noc_core::rng::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.range(0, 100), b.range(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent stream for a subcomponent. Streams derived
    /// with different `salt`s are uncorrelated.
    pub fn derive(&self, salt: u64) -> DetRng {
        // SplitMix-style mixing of the parent's next word with the salt.
        let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        DetRng::new(x ^ self.peek_seed())
    }

    fn peek_seed(&self) -> u64 {
        // Clone so deriving does not perturb the parent stream.
        let mut c = self.inner.clone();
        c.gen()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniformly picks an element of a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.range(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.range(0, 1 << 30) == b.range(0, 1 << 30));
        assert!(same.count() < 4);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let parent = DetRng::new(99);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(1);
        let mut c3 = parent.derive(2);
        let s1: Vec<_> = (0..16).map(|_| c1.range(0, 1 << 20)).collect();
        let s2: Vec<_> = (0..16).map(|_| c2.range(0, 1 << 20)).collect();
        let s3: Vec<_> = (0..16).map(|_| c3.range(0, 1 << 20)).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.chance(2.5));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn pick_returns_slice_element() {
        let mut r = DetRng::new(11);
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
