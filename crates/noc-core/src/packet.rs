//! Packets, flits-as-counters, message classes and the central packet store.
//!
//! The simulator models virtual cut-through with a *single packet per VC*
//! (Table II of the paper), so a buffer never interleaves flits of
//! different packets. That lets us represent flit movement with per-VC
//! counters instead of per-flit objects while keeping flit-accurate timing
//! (serialization of 5-flit data packets, cut-through forwarding, credit
//! turnaround).

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coherence message class.
///
/// The paper's baselines need 6 virtual networks for MOESI Hammer; this
/// enum provides the corresponding 6 classes. FastPass and Pitstop run
/// with 0 VNs but still keep one injection and one ejection queue per
/// class (§III-E, "Virtual networks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MessageClass {
    /// Coherence request (GetS/GetM). 1-flit control message.
    Request = 0,
    /// Forwarded request from a directory to an owner.
    Forward = 1,
    /// Data or ack response. Sink class: always consumable.
    Response = 2,
    /// Writeback request carrying dirty data.
    Writeback = 3,
    /// Writeback acknowledgment. Sink class.
    WritebackAck = 4,
    /// Unblock/completion notification. Sink class.
    Unblock = 5,
}

/// Number of message classes (= number of VNs in the 6-VN baselines).
pub const NUM_CLASSES: usize = 6;

/// All message classes in index order.
pub const CLASSES: [MessageClass; NUM_CLASSES] = [
    MessageClass::Request,
    MessageClass::Forward,
    MessageClass::Response,
    MessageClass::Writeback,
    MessageClass::WritebackAck,
    MessageClass::Unblock,
];

impl MessageClass {
    /// Stable index in `0..6`, used to select VNs and per-class queues.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a class from its stable index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    pub fn from_index(i: usize) -> MessageClass {
        CLASSES[i]
    }

    /// Whether this class terminates protocol transactions.
    ///
    /// Sink classes can always be consumed at the destination (Lemma 3 of
    /// the paper relies on at least one sink class existing per
    /// transaction).
    pub fn is_sink(self) -> bool {
        matches!(
            self,
            MessageClass::Response | MessageClass::WritebackAck | MessageClass::Unblock
        )
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Request => "Req",
            MessageClass::Forward => "Fwd",
            MessageClass::Response => "Resp",
            MessageClass::Writeback => "Wb",
            MessageClass::WritebackAck => "WbAck",
            MessageClass::Unblock => "Unblk",
        };
        f.write_str(s)
    }
}

/// Unique identifier of a packet for the lifetime of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(u64);

impl PacketId {
    /// Filler value for pre-sized storage (flat arenas, scratch slots)
    /// whose entries are guarded by a separate occupancy signal. Readers
    /// must never interpret a slot's id without checking that signal: the
    /// placeholder aliases a real id (`raw() == 0`) on purpose, so any
    /// code path that trusts it unguarded fails loudly in conservation
    /// audits rather than silently dropping traffic.
    pub const PLACEHOLDER: PacketId = PacketId(0);

    /// Raw value (also the insertion order of the packet).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// How a packet ultimately traversed the network, for the Fig. 9 / Fig. 13
/// breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryKind {
    /// Delivered entirely through credit-based regular pass.
    Regular,
    /// Upgraded by a prime router and delivered over a FastPass-Lane.
    FastPass,
}

/// A packet in flight.
///
/// Timing fields are filled in by the simulator as the packet progresses;
/// they feed the latency statistics of Figs. 7, 9, 10 and 12.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Packet {
    id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message class (selects VN in VN-based schemes, queue otherwise).
    pub class: MessageClass,
    /// Length in flits (the paper mixes 1-flit and 5-flit packets).
    pub len_flits: u8,
    /// Cycle the packet was created (enqueued at the source NI).
    pub gen_cycle: u64,
    /// Cycle the head flit entered the network, once it did.
    pub inject_cycle: Option<u64>,
    /// Cycle the tail flit was ejected at the destination, once it was.
    pub eject_cycle: Option<u64>,
    /// Hops traversed so far (regular + bufferless).
    pub hops: u32,
    /// Times this packet was deflected/misrouted (MinBD, SWAP, DRAIN).
    pub deflections: u32,
    /// Cycle the packet was upgraded to a FastPass-Packet, if ever.
    pub upgrade_cycle: Option<u64>,
    /// Cycles spent traversing bufferlessly on FastPass-Lanes (including
    /// returning paths). The remainder of its latency is "regular time".
    pub bufferless_cycles: u64,
    /// Times the packet arrived at a full ejection queue and was sent back
    /// to its prime router (§III-C4).
    pub rejections: u32,
    /// Times this packet was dropped at the source and regenerated from
    /// MSHR state (only ever injection-queue requests, §III-C4).
    pub drops: u32,
    /// Protocol transaction this packet belongs to, if any.
    pub txn: Option<u64>,
}

impl Packet {
    /// Creates a packet. `len_flits` must be in `1..=buffer depth` (5 in
    /// the paper's configuration); the store does not enforce an upper
    /// bound, the network configuration does.
    ///
    /// Returns a [`PacketSeed`]: ids are assigned by the store, so the
    /// constructor cannot return `Packet` itself.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        src: NodeId,
        dst: NodeId,
        class: MessageClass,
        len_flits: u8,
        gen_cycle: u64,
    ) -> PacketSeed {
        PacketSeed {
            src,
            dst,
            class,
            len_flits,
            gen_cycle,
            txn: None,
        }
    }

    /// Unique id of this packet.
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// Total latency from generation to final ejection, if delivered.
    pub fn latency(&self) -> Option<u64> {
        self.eject_cycle.map(|e| e - self.gen_cycle)
    }

    /// Network latency from injection to ejection, if delivered.
    pub fn network_latency(&self) -> Option<u64> {
        match (self.inject_cycle, self.eject_cycle) {
            (Some(i), Some(e)) => Some(e.saturating_sub(i)),
            _ => None,
        }
    }

    /// How the packet was finally delivered.
    pub fn delivery_kind(&self) -> DeliveryKind {
        if self.upgrade_cycle.is_some() {
            DeliveryKind::FastPass
        } else {
            DeliveryKind::Regular
        }
    }
}

/// All the information needed to create a packet, before the store assigns
/// its id. Produced by [`Packet::new`], consumed by [`PacketStore::insert`].
#[derive(Debug, Clone)]
pub struct PacketSeed {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message class.
    pub class: MessageClass,
    /// Length in flits.
    pub len_flits: u8,
    /// Creation cycle.
    pub gen_cycle: u64,
    /// Optional protocol transaction id.
    pub txn: Option<u64>,
}

impl PacketSeed {
    /// Attaches a protocol transaction id.
    pub fn with_txn(mut self, txn: u64) -> Self {
        self.txn = Some(txn);
        self
    }
}

/// Central owner of all packets in a simulation.
///
/// Buffers and queues throughout the simulator store only [`PacketId`]s;
/// the store maps them back to the full [`Packet`]. Delivered packets are
/// removed by the engine once their statistics are recorded.
#[derive(Debug, Default)]
pub struct PacketStore {
    packets: Vec<Option<Packet>>,
    live: usize,
}

impl PacketStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a new packet, assigning its id.
    pub fn insert(&mut self, seed: PacketSeed) -> PacketId {
        let id = PacketId(self.packets.len() as u64);
        self.packets.push(Some(Packet {
            id,
            src: seed.src,
            dst: seed.dst,
            class: seed.class,
            len_flits: seed.len_flits,
            gen_cycle: seed.gen_cycle,
            inject_cycle: None,
            eject_cycle: None,
            hops: 0,
            deflections: 0,
            upgrade_cycle: None,
            bufferless_cycles: 0,
            rejections: 0,
            drops: 0,
            txn: seed.txn,
        }));
        self.live += 1;
        id
    }

    /// Shared access to a packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet was already freed — buffers must never hold
    /// stale ids.
    pub fn get(&self, id: PacketId) -> &Packet {
        self.packets[id.0 as usize]
            .as_ref()
            .expect("packet freed while still referenced")
    }

    /// Mutable access to a packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet was already freed.
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.packets[id.0 as usize]
            .as_mut()
            .expect("packet freed while still referenced")
    }

    /// Whether `id` still refers to a live packet.
    pub fn contains(&self, id: PacketId) -> bool {
        self.packets.get(id.0 as usize).is_some_and(|p| p.is_some())
    }

    /// Number of packets ever created.
    pub fn created(&self) -> usize {
        self.packets.len()
    }

    /// Number of live (not yet freed) packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Removes and returns a packet (used after its stats are recorded).
    ///
    /// # Panics
    ///
    /// Panics if the packet was already freed.
    pub fn remove(&mut self, id: PacketId) -> Packet {
        let p = self.packets[id.0 as usize]
            .take()
            .expect("packet freed twice");
        self.live -= 1;
        p
    }

    /// Iterator over all live packets.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.packets.iter().filter_map(|p| p.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn class_index_roundtrip() {
        for (i, c) in CLASSES.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(MessageClass::from_index(i), c);
        }
    }

    #[test]
    fn sink_classes_match_lemma3() {
        // Lemma 3: each transaction ends in a sink class. Response-like
        // classes are sinks; request-like classes are not.
        assert!(MessageClass::Response.is_sink());
        assert!(MessageClass::WritebackAck.is_sink());
        assert!(MessageClass::Unblock.is_sink());
        assert!(!MessageClass::Request.is_sink());
        assert!(!MessageClass::Forward.is_sink());
        assert!(!MessageClass::Writeback.is_sink());
    }

    #[test]
    fn store_insert_get_remove() {
        let mut store = PacketStore::new();
        let id = store.insert(Packet::new(node(0), node(5), MessageClass::Request, 1, 42));
        assert!(store.contains(id));
        assert_eq!(store.get(id).src, node(0));
        assert_eq!(store.get(id).gen_cycle, 42);
        assert_eq!(store.live(), 1);
        let p = store.remove(id);
        assert_eq!(p.id(), id);
        assert!(!store.contains(id));
        assert_eq!(store.live(), 0);
        assert_eq!(store.created(), 1);
    }

    #[test]
    fn ids_are_sequential_and_stable() {
        let mut store = PacketStore::new();
        let a = store.insert(Packet::new(node(0), node(1), MessageClass::Request, 1, 0));
        let b = store.insert(Packet::new(node(1), node(2), MessageClass::Response, 5, 0));
        assert!(a.raw() < b.raw());
        store.remove(a);
        // Removing a must not disturb b.
        assert_eq!(store.get(b).dst, node(2));
    }

    #[test]
    fn latency_accounting() {
        let mut store = PacketStore::new();
        let id = store.insert(Packet::new(node(0), node(3), MessageClass::Request, 1, 100));
        assert_eq!(store.get(id).latency(), None);
        {
            let p = store.get_mut(id);
            p.inject_cycle = Some(110);
            p.eject_cycle = Some(150);
        }
        assert_eq!(store.get(id).latency(), Some(50));
        assert_eq!(store.get(id).network_latency(), Some(40));
        assert_eq!(store.get(id).delivery_kind(), DeliveryKind::Regular);
    }

    #[test]
    fn upgraded_packet_reports_fastpass_delivery() {
        let mut store = PacketStore::new();
        let id = store.insert(Packet::new(node(0), node(3), MessageClass::Request, 1, 0));
        store.get_mut(id).upgrade_cycle = Some(7);
        assert_eq!(store.get(id).delivery_kind(), DeliveryKind::FastPass);
    }

    #[test]
    #[should_panic(expected = "freed")]
    fn double_free_panics() {
        let mut store = PacketStore::new();
        let id = store.insert(Packet::new(node(0), node(1), MessageClass::Request, 1, 0));
        store.remove(id);
        store.remove(id);
    }
}
