//! Fundamental types for the FastPass NoC reproduction.
//!
//! This crate holds everything that both the simulator substrate
//! (`noc-sim`) and the flow-control schemes (FastPass and the baselines)
//! agree on: the [mesh topology](topology), [packets and message
//! classes](packet), the [simulation configuration](config) mirroring
//! Table II of the paper, deterministic [randomness](rng), seeded
//! [fault configurations](fault) for degraded-topology studies, and
//! [statistics](stats) collection (latency distributions, throughput,
//! packet-type breakdowns).
//!
//! # Example
//!
//! ```
//! use noc_core::topology::{Mesh, Direction};
//!
//! let mesh = Mesh::new(8, 8);
//! let a = mesh.node(3, 4);
//! let b = mesh.neighbor(a, Direction::East).unwrap();
//! assert_eq!(mesh.x(b), 4);
//! assert_eq!(mesh.hops(a, b), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod packet;
pub mod rng;
pub mod stats;
pub mod topology;

pub use config::SimConfig;
pub use fault::FaultConfig;
pub use packet::{MessageClass, Packet, PacketId, PacketStore};
pub use rng::DetRng;
pub use stats::NetStats;
pub use topology::{Direction, LinkId, Mesh, NodeId, Port};
