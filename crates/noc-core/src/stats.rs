//! Statistics collection: latency distributions, throughput, breakdowns.
//!
//! These feed every figure in the evaluation: average packet latency and
//! saturation throughput (Figs. 7 & 8), the regular/bufferless latency
//! split (Fig. 9), application latency and execution time (Fig. 10),
//! 99th-percentile tails (Fig. 12) and the packet-type breakdown
//! (Fig. 13).

use crate::packet::{DeliveryKind, Packet};
use serde::{Deserialize, Serialize};

/// An online distribution of `u64` samples with exact percentiles.
///
/// Stores all samples; simulations in this repository eject at most a few
/// hundred thousand packets per run, so exact percentiles are affordable
/// and avoid quantile-sketch error in the tail-latency figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Distribution {
    samples: Vec<u64>,
    sum: u128,
    sorted: bool,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sum += v as u128;
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.samples.len() as f64)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Exact percentile (`p` in `[0, 100]`) with nearest-rank rounding,
    /// or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(n - 1)])
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Distribution) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = false;
    }

    /// Sum of all samples (exact, no overflow for realistic runs).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Whether the sample buffer is currently sorted, i.e. whether
    /// [`percentile_sorted`](Self::percentile_sorted) may be called.
    /// True after [`seal`](Self::seal) (or any `percentile` query) until
    /// the next [`record`](Self::record)/[`merge`](Self::merge).
    pub fn is_sealed(&self) -> bool {
        self.sorted || self.samples.is_empty()
    }

    /// Sorts the samples so percentiles become readable through a shared
    /// reference ([`percentile_sorted`](Self::percentile_sorted)).
    ///
    /// Readers that only hold `&Distribution` — the windowed sampler, or
    /// any exporter walking a finished [`NetStats`] — cannot use the lazy
    /// `&mut self` [`percentile`](Self::percentile) path. Sealing once at
    /// the end of a run gives them the identical nearest-rank answers
    /// without interior mutability or a defensive clone.
    pub fn seal(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Exact percentile through a shared reference. Identical results to
    /// [`percentile`](Self::percentile) (proven by a unit test), but
    /// requires the distribution to be sealed first.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`, or if samples were recorded
    /// since the last [`seal`](Self::seal) — answering from an unsorted
    /// buffer would silently return garbage.
    pub fn percentile_sorted(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        assert!(
            self.sorted,
            "percentile_sorted on an unsealed Distribution; call seal() first"
        );
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(n - 1)])
    }
}

/// A `Copy` snapshot of [`NetStats`]' additive counters, used by the
/// windowed sampler to form per-window deltas without touching (or
/// cloning) the live distributions.
///
/// Every field is monotonically non-decreasing over a run (statistics
/// only ever accumulate between resets), so the difference of two
/// snapshots taken from the same window is exact. Distributions are
/// represented by their `(count, sum)` pair — enough for per-window
/// means; exact window percentiles would require the samples themselves,
/// which the no-allocation sampling contract rules out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Packets delivered via regular pass only.
    pub delivered_regular: u64,
    /// Packets delivered after a FastPass upgrade.
    pub delivered_fastpass: u64,
    /// Flits delivered.
    pub flits_delivered: u64,
    /// Packets generated.
    pub generated: u64,
    /// Drop events.
    pub dropped: u64,
    /// Unique delivered packets dropped at least once.
    pub dropped_packets: u64,
    /// FastPass ejection-queue rejections.
    pub rejections: u64,
    /// Deflections/misroutes.
    pub deflections: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Number of end-to-end latency samples (== packets delivered with a
    /// recorded latency).
    pub latency_count: u64,
    /// Sum of end-to-end latency samples, in cycles.
    pub latency_sum: u128,
    /// Number of hop-count samples.
    pub hops_count: u64,
    /// Sum of hop-count samples.
    pub hops_sum: u128,
}

impl StatsSnapshot {
    /// Total packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered_regular + self.delivered_fastpass
    }

    /// Field-wise `self - earlier` (saturating, so a stats reset between
    /// snapshots degrades to zeros instead of wrapping).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            delivered_regular: self
                .delivered_regular
                .saturating_sub(earlier.delivered_regular),
            delivered_fastpass: self
                .delivered_fastpass
                .saturating_sub(earlier.delivered_fastpass),
            flits_delivered: self.flits_delivered.saturating_sub(earlier.flits_delivered),
            generated: self.generated.saturating_sub(earlier.generated),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            dropped_packets: self.dropped_packets.saturating_sub(earlier.dropped_packets),
            rejections: self.rejections.saturating_sub(earlier.rejections),
            deflections: self.deflections.saturating_sub(earlier.deflections),
            cycles: self.cycles.saturating_sub(earlier.cycles),
            latency_count: self.latency_count.saturating_sub(earlier.latency_count),
            latency_sum: self.latency_sum.saturating_sub(earlier.latency_sum),
            hops_count: self.hops_count.saturating_sub(earlier.hops_count),
            hops_sum: self.hops_sum.saturating_sub(earlier.hops_sum),
        }
    }

    /// Mean end-to-end latency over the snapshot (or delta), in cycles.
    pub fn mean_latency(&self) -> Option<f64> {
        if self.latency_count == 0 {
            None
        } else {
            Some(self.latency_sum as f64 / self.latency_count as f64)
        }
    }
}

/// Aggregate network statistics for one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// End-to-end latency (generation → tail ejected) of delivered packets.
    pub latency: Distribution,
    /// Network latency (injection → tail ejected).
    pub network_latency: Distribution,
    /// Latency of packets delivered purely by regular pass.
    pub regular_latency: Distribution,
    /// Latency of packets that were upgraded to FastPass-Packets.
    pub fastpass_latency: Distribution,
    /// Bufferless portion of FastPass-Packet latency (Fig. 9's
    /// "FastPass time").
    pub fastpass_bufferless: Distribution,
    /// Buffered portion of FastPass-Packet latency (Fig. 9's
    /// "regular time").
    pub fastpass_buffered: Distribution,
    /// Hop counts of delivered packets.
    pub hops: Distribution,
    /// Packets delivered via regular pass only.
    pub delivered_regular: u64,
    /// Packets delivered after a FastPass upgrade.
    pub delivered_fastpass: u64,
    /// Flits delivered (for throughput in flits/node/cycle).
    pub flits_delivered: u64,
    /// Packets generated (offered load accounting).
    pub generated: u64,
    /// Drop *events*: an injection-queue request was dropped to make a
    /// bubble (§III-C4); each victim is regenerated from MSHR state and
    /// may be dropped again later.
    pub dropped: u64,
    /// Unique delivered packets that were dropped at least once (the
    /// paper's Fig. 13 "dropped packets" metric).
    pub dropped_packets: u64,
    /// FastPass-Packets that bounced off a full ejection queue.
    pub rejections: u64,
    /// Misroutes/deflections taken (MinBD, SWAP, DRAIN).
    pub deflections: u64,
    /// Cycles simulated in the measurement window.
    pub cycles: u64,
    /// Number of nodes (denominator of per-node rates).
    pub nodes: u64,
    /// Cycle at which this measurement window began (0 for stats that
    /// cover a whole run). Set by the engine when statistics are reset at
    /// the warmup/measurement boundary.
    pub window_start: u64,
    /// Delivered packets that were *generated before* `window_start`:
    /// warmup-era packets drained during measurement. They count toward
    /// `delivered`/latency (they are real deliveries), but not toward the
    /// window's offered load — without this split, accepted throughput
    /// near saturation can exceed apparent offered load.
    pub delivered_carryover: u64,
}

impl NetStats {
    /// Creates empty statistics for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        NetStats {
            nodes: nodes as u64,
            ..Self::default()
        }
    }

    /// Records a delivered packet. Call exactly once per packet, when its
    /// tail flit is consumed at the destination.
    pub fn record_delivered(&mut self, pkt: &Packet) {
        let lat = pkt
            .latency()
            .expect("record_delivered called before eject_cycle set");
        self.latency.record(lat);
        if pkt.gen_cycle < self.window_start {
            self.delivered_carryover += 1;
        }
        if let Some(nl) = pkt.network_latency() {
            self.network_latency.record(nl);
        }
        self.hops.record(pkt.hops as u64);
        self.flits_delivered += pkt.len_flits as u64;
        self.deflections += pkt.deflections as u64;
        if pkt.drops > 0 {
            self.dropped_packets += 1;
        }
        match pkt.delivery_kind() {
            DeliveryKind::Regular => {
                self.delivered_regular += 1;
                self.regular_latency.record(lat);
            }
            DeliveryKind::FastPass => {
                self.delivered_fastpass += 1;
                self.fastpass_latency.record(lat);
                let bufferless = pkt.bufferless_cycles.min(lat);
                self.fastpass_bufferless.record(bufferless);
                self.fastpass_buffered.record(lat - bufferless);
            }
        }
    }

    /// Total packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered_regular + self.delivered_fastpass
    }

    /// A `Copy` snapshot of every additive counter (allocation-free; see
    /// [`StatsSnapshot`]). Two snapshots bracketing a window subtract to
    /// the window's exact contribution.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            delivered_regular: self.delivered_regular,
            delivered_fastpass: self.delivered_fastpass,
            flits_delivered: self.flits_delivered,
            generated: self.generated,
            dropped: self.dropped,
            dropped_packets: self.dropped_packets,
            rejections: self.rejections,
            deflections: self.deflections,
            cycles: self.cycles,
            latency_count: self.latency.count() as u64,
            latency_sum: self.latency.sum(),
            hops_count: self.hops.count() as u64,
            hops_sum: self.hops.sum(),
        }
    }

    /// Delivered packets that were also *generated* inside this window
    /// (excludes warmup carryover). Always `<= generated` under open-loop
    /// traffic, which makes it the right numerator for offered-vs-accepted
    /// comparisons across the warmup boundary.
    pub fn delivered_in_window(&self) -> u64 {
        self.delivered() - self.delivered_carryover
    }

    /// Average end-to-end packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean().unwrap_or(f64::NAN)
    }

    /// Accepted throughput in packets/node/cycle.
    pub fn throughput_packets(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.delivered() as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Accepted throughput in flits/node/cycle.
    pub fn throughput_flits(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Fraction of delivered packets that were FastPass-Packets.
    pub fn fastpass_fraction(&self) -> f64 {
        let d = self.delivered();
        if d == 0 {
            0.0
        } else {
            self.delivered_fastpass as f64 / d as f64
        }
    }

    /// Fraction of delivered packets that were dropped (and regenerated)
    /// at least once — the paper's Fig. 13 metric.
    pub fn dropped_fraction(&self) -> f64 {
        let d = self.delivered();
        if d == 0 {
            0.0
        } else {
            self.dropped_packets as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageClass, Packet, PacketStore};
    use crate::topology::NodeId;

    #[test]
    fn distribution_mean_and_percentiles() {
        let mut d = Distribution::new();
        for v in 1..=100u64 {
            d.record(v);
        }
        assert_eq!(d.count(), 100);
        assert_eq!(d.mean(), Some(50.5));
        assert_eq!(d.percentile(50.0), Some(50));
        assert_eq!(d.percentile(99.0), Some(99));
        assert_eq!(d.percentile(100.0), Some(100));
        assert_eq!(d.percentile(0.0), Some(1));
        assert_eq!(d.min(), Some(1));
        assert_eq!(d.max(), Some(100));
    }

    #[test]
    fn distribution_empty() {
        let mut d = Distribution::new();
        assert_eq!(d.mean(), None);
        assert_eq!(d.percentile(99.0), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    fn distribution_merge() {
        let mut a = Distribution::new();
        let mut b = Distribution::new();
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn record_interleaved_with_percentile_queries() {
        // percentile() sorts lazily; recording afterwards must re-sort.
        let mut d = Distribution::new();
        d.record(10);
        d.record(5);
        assert_eq!(d.percentile(100.0), Some(10));
        d.record(1);
        assert_eq!(d.percentile(0.0), Some(1));
    }

    #[test]
    fn percentile_sorted_matches_mut_percentile() {
        // Adversarial sample set: duplicates, zeros, a huge outlier, and
        // insertion order far from sorted.
        let data: Vec<u64> = vec![7, 7, 0, 3, 1_000_000, 42, 7, 0, 13, 9, 9, 2];
        let mut lazy = Distribution::new();
        let mut sealed = Distribution::new();
        for &v in &data {
            lazy.record(v);
            sealed.record(v);
        }
        assert!(!sealed.is_sealed());
        sealed.seal();
        assert!(sealed.is_sealed());
        for p in [0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                lazy.percentile(p),
                sealed.percentile_sorted(p),
                "p = {p} diverged between the &mut and sealed paths"
            );
        }
        // Sealing is idempotent and survives further queries.
        sealed.seal();
        assert_eq!(sealed.percentile_sorted(50.0), lazy.percentile(50.0));
    }

    #[test]
    fn seal_invalidated_by_record() {
        let mut d = Distribution::new();
        d.record(5);
        d.seal();
        d.record(1);
        assert!(!d.is_sealed());
    }

    #[test]
    #[should_panic(expected = "unsealed")]
    fn percentile_sorted_rejects_unsealed() {
        let mut d = Distribution::new();
        d.record(2);
        d.record(1);
        let _ = d.percentile_sorted(50.0);
    }

    #[test]
    fn percentile_sorted_empty_is_none_without_seal() {
        let d = Distribution::new();
        assert_eq!(d.percentile_sorted(99.0), None);
        assert!(d.is_sealed(), "an empty distribution is trivially sorted");
    }

    #[test]
    fn snapshot_delta_brackets_a_window() {
        let mut store = PacketStore::new();
        let mut s = NetStats::new(4);
        s.generated = 3;
        s.record_delivered(&delivered_packet(&mut store, false));
        let before = s.snapshot();
        assert_eq!(before.delivered(), 1);
        assert_eq!(before.latency_count, 1);
        s.generated = 7;
        s.cycles = 50;
        s.record_delivered(&delivered_packet(&mut store, true));
        s.record_delivered(&delivered_packet(&mut store, false));
        let after = s.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.delivered(), 2);
        assert_eq!(d.delivered_fastpass, 1);
        assert_eq!(d.generated, 4);
        assert_eq!(d.cycles, 50);
        assert_eq!(d.latency_count, 2);
        assert_eq!(d.flits_delivered, 10);
        // Window mean uses only the delta's samples: both packets in the
        // window have latency 40.
        assert_eq!(d.mean_latency(), Some(40.0));
    }

    #[test]
    fn snapshot_delta_saturates_across_reset() {
        let mut store = PacketStore::new();
        let mut s = NetStats::new(4);
        s.record_delivered(&delivered_packet(&mut store, false));
        let before = s.snapshot();
        let fresh = NetStats::new(4).snapshot();
        let d = fresh.delta_since(&before);
        assert_eq!(d.delivered(), 0, "reset must clamp, not wrap");
        assert_eq!(d.latency_sum, 0);
    }

    fn delivered_packet(store: &mut PacketStore, fastpass: bool) -> Packet {
        let id = store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(9),
            MessageClass::Request,
            5,
            100,
        ));
        {
            let p = store.get_mut(id);
            p.inject_cycle = Some(104);
            p.eject_cycle = Some(140);
            p.hops = 6;
            if fastpass {
                p.upgrade_cycle = Some(120);
                p.bufferless_cycles = 12;
            }
        }
        store.remove(id)
    }

    #[test]
    fn netstats_splits_regular_and_fastpass() {
        let mut store = PacketStore::new();
        let mut s = NetStats::new(64);
        s.record_delivered(&delivered_packet(&mut store, false));
        s.record_delivered(&delivered_packet(&mut store, true));
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.delivered_regular, 1);
        assert_eq!(s.delivered_fastpass, 1);
        assert_eq!(s.fastpass_fraction(), 0.5);
        assert_eq!(s.fastpass_bufferless.mean(), Some(12.0));
        assert_eq!(s.fastpass_buffered.mean(), Some(28.0));
        assert_eq!(s.flits_delivered, 10);
    }

    #[test]
    fn throughput_rates() {
        let mut store = PacketStore::new();
        let mut s = NetStats::new(4);
        s.cycles = 100;
        for _ in 0..8 {
            s.record_delivered(&delivered_packet(&mut store, false));
        }
        assert!((s.throughput_packets() - 8.0 / 400.0).abs() < 1e-12);
        assert!((s.throughput_flits() - 40.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_carryover_split() {
        // Packets generated before the window start count as carryover;
        // packets generated inside it count toward the window.
        let mut store = PacketStore::new();
        let mut s = NetStats::new(4);
        s.window_start = 120; // delivered_packet() uses gen_cycle = 100
        s.record_delivered(&delivered_packet(&mut store, false));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.delivered_carryover, 1);
        assert_eq!(s.delivered_in_window(), 0);
        s.window_start = 50;
        s.record_delivered(&delivered_packet(&mut store, false));
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.delivered_carryover, 1);
        assert_eq!(s.delivered_in_window(), 1);
    }

    #[test]
    fn zero_cycles_yield_zero_throughput() {
        let s = NetStats::new(16);
        assert_eq!(s.throughput_packets(), 0.0);
        assert_eq!(s.dropped_fraction(), 0.0);
        assert_eq!(s.fastpass_fraction(), 0.0);
    }
}
