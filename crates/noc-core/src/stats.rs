//! Statistics collection: latency distributions, throughput, breakdowns.
//!
//! These feed every figure in the evaluation: average packet latency and
//! saturation throughput (Figs. 7 & 8), the regular/bufferless latency
//! split (Fig. 9), application latency and execution time (Fig. 10),
//! 99th-percentile tails (Fig. 12) and the packet-type breakdown
//! (Fig. 13).

use crate::packet::{DeliveryKind, Packet};
use serde::{Deserialize, Serialize};

/// An online distribution of `u64` samples with exact percentiles.
///
/// Stores all samples; simulations in this repository eject at most a few
/// hundred thousand packets per run, so exact percentiles are affordable
/// and avoid quantile-sketch error in the tail-latency figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Distribution {
    samples: Vec<u64>,
    sum: u128,
    sorted: bool,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sum += v as u128;
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.samples.len() as f64)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Exact percentile (`p` in `[0, 100]`) with nearest-rank rounding,
    /// or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(n - 1)])
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &Distribution) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = false;
    }
}

/// Aggregate network statistics for one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// End-to-end latency (generation → tail ejected) of delivered packets.
    pub latency: Distribution,
    /// Network latency (injection → tail ejected).
    pub network_latency: Distribution,
    /// Latency of packets delivered purely by regular pass.
    pub regular_latency: Distribution,
    /// Latency of packets that were upgraded to FastPass-Packets.
    pub fastpass_latency: Distribution,
    /// Bufferless portion of FastPass-Packet latency (Fig. 9's
    /// "FastPass time").
    pub fastpass_bufferless: Distribution,
    /// Buffered portion of FastPass-Packet latency (Fig. 9's
    /// "regular time").
    pub fastpass_buffered: Distribution,
    /// Hop counts of delivered packets.
    pub hops: Distribution,
    /// Packets delivered via regular pass only.
    pub delivered_regular: u64,
    /// Packets delivered after a FastPass upgrade.
    pub delivered_fastpass: u64,
    /// Flits delivered (for throughput in flits/node/cycle).
    pub flits_delivered: u64,
    /// Packets generated (offered load accounting).
    pub generated: u64,
    /// Drop *events*: an injection-queue request was dropped to make a
    /// bubble (§III-C4); each victim is regenerated from MSHR state and
    /// may be dropped again later.
    pub dropped: u64,
    /// Unique delivered packets that were dropped at least once (the
    /// paper's Fig. 13 "dropped packets" metric).
    pub dropped_packets: u64,
    /// FastPass-Packets that bounced off a full ejection queue.
    pub rejections: u64,
    /// Misroutes/deflections taken (MinBD, SWAP, DRAIN).
    pub deflections: u64,
    /// Cycles simulated in the measurement window.
    pub cycles: u64,
    /// Number of nodes (denominator of per-node rates).
    pub nodes: u64,
    /// Cycle at which this measurement window began (0 for stats that
    /// cover a whole run). Set by the engine when statistics are reset at
    /// the warmup/measurement boundary.
    pub window_start: u64,
    /// Delivered packets that were *generated before* `window_start`:
    /// warmup-era packets drained during measurement. They count toward
    /// `delivered`/latency (they are real deliveries), but not toward the
    /// window's offered load — without this split, accepted throughput
    /// near saturation can exceed apparent offered load.
    pub delivered_carryover: u64,
}

impl NetStats {
    /// Creates empty statistics for a network of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        NetStats {
            nodes: nodes as u64,
            ..Self::default()
        }
    }

    /// Records a delivered packet. Call exactly once per packet, when its
    /// tail flit is consumed at the destination.
    pub fn record_delivered(&mut self, pkt: &Packet) {
        let lat = pkt
            .latency()
            .expect("record_delivered called before eject_cycle set");
        self.latency.record(lat);
        if pkt.gen_cycle < self.window_start {
            self.delivered_carryover += 1;
        }
        if let Some(nl) = pkt.network_latency() {
            self.network_latency.record(nl);
        }
        self.hops.record(pkt.hops as u64);
        self.flits_delivered += pkt.len_flits as u64;
        self.deflections += pkt.deflections as u64;
        if pkt.drops > 0 {
            self.dropped_packets += 1;
        }
        match pkt.delivery_kind() {
            DeliveryKind::Regular => {
                self.delivered_regular += 1;
                self.regular_latency.record(lat);
            }
            DeliveryKind::FastPass => {
                self.delivered_fastpass += 1;
                self.fastpass_latency.record(lat);
                let bufferless = pkt.bufferless_cycles.min(lat);
                self.fastpass_bufferless.record(bufferless);
                self.fastpass_buffered.record(lat - bufferless);
            }
        }
    }

    /// Total packets delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered_regular + self.delivered_fastpass
    }

    /// Delivered packets that were also *generated* inside this window
    /// (excludes warmup carryover). Always `<= generated` under open-loop
    /// traffic, which makes it the right numerator for offered-vs-accepted
    /// comparisons across the warmup boundary.
    pub fn delivered_in_window(&self) -> u64 {
        self.delivered() - self.delivered_carryover
    }

    /// Average end-to-end packet latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.latency.mean().unwrap_or(f64::NAN)
    }

    /// Accepted throughput in packets/node/cycle.
    pub fn throughput_packets(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.delivered() as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Accepted throughput in flits/node/cycle.
    pub fn throughput_flits(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Fraction of delivered packets that were FastPass-Packets.
    pub fn fastpass_fraction(&self) -> f64 {
        let d = self.delivered();
        if d == 0 {
            0.0
        } else {
            self.delivered_fastpass as f64 / d as f64
        }
    }

    /// Fraction of delivered packets that were dropped (and regenerated)
    /// at least once — the paper's Fig. 13 metric.
    pub fn dropped_fraction(&self) -> f64 {
        let d = self.delivered();
        if d == 0 {
            0.0
        } else {
            self.dropped_packets as f64 / d as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageClass, Packet, PacketStore};
    use crate::topology::NodeId;

    #[test]
    fn distribution_mean_and_percentiles() {
        let mut d = Distribution::new();
        for v in 1..=100u64 {
            d.record(v);
        }
        assert_eq!(d.count(), 100);
        assert_eq!(d.mean(), Some(50.5));
        assert_eq!(d.percentile(50.0), Some(50));
        assert_eq!(d.percentile(99.0), Some(99));
        assert_eq!(d.percentile(100.0), Some(100));
        assert_eq!(d.percentile(0.0), Some(1));
        assert_eq!(d.min(), Some(1));
        assert_eq!(d.max(), Some(100));
    }

    #[test]
    fn distribution_empty() {
        let mut d = Distribution::new();
        assert_eq!(d.mean(), None);
        assert_eq!(d.percentile(99.0), None);
        assert_eq!(d.max(), None);
    }

    #[test]
    fn distribution_merge() {
        let mut a = Distribution::new();
        let mut b = Distribution::new();
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn record_interleaved_with_percentile_queries() {
        // percentile() sorts lazily; recording afterwards must re-sort.
        let mut d = Distribution::new();
        d.record(10);
        d.record(5);
        assert_eq!(d.percentile(100.0), Some(10));
        d.record(1);
        assert_eq!(d.percentile(0.0), Some(1));
    }

    fn delivered_packet(store: &mut PacketStore, fastpass: bool) -> Packet {
        let id = store.insert(Packet::new(
            NodeId::new(0),
            NodeId::new(9),
            MessageClass::Request,
            5,
            100,
        ));
        {
            let p = store.get_mut(id);
            p.inject_cycle = Some(104);
            p.eject_cycle = Some(140);
            p.hops = 6;
            if fastpass {
                p.upgrade_cycle = Some(120);
                p.bufferless_cycles = 12;
            }
        }
        store.remove(id)
    }

    #[test]
    fn netstats_splits_regular_and_fastpass() {
        let mut store = PacketStore::new();
        let mut s = NetStats::new(64);
        s.record_delivered(&delivered_packet(&mut store, false));
        s.record_delivered(&delivered_packet(&mut store, true));
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.delivered_regular, 1);
        assert_eq!(s.delivered_fastpass, 1);
        assert_eq!(s.fastpass_fraction(), 0.5);
        assert_eq!(s.fastpass_bufferless.mean(), Some(12.0));
        assert_eq!(s.fastpass_buffered.mean(), Some(28.0));
        assert_eq!(s.flits_delivered, 10);
    }

    #[test]
    fn throughput_rates() {
        let mut store = PacketStore::new();
        let mut s = NetStats::new(4);
        s.cycles = 100;
        for _ in 0..8 {
            s.record_delivered(&delivered_packet(&mut store, false));
        }
        assert!((s.throughput_packets() - 8.0 / 400.0).abs() < 1e-12);
        assert!((s.throughput_flits() - 40.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_carryover_split() {
        // Packets generated before the window start count as carryover;
        // packets generated inside it count toward the window.
        let mut store = PacketStore::new();
        let mut s = NetStats::new(4);
        s.window_start = 120; // delivered_packet() uses gen_cycle = 100
        s.record_delivered(&delivered_packet(&mut store, false));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.delivered_carryover, 1);
        assert_eq!(s.delivered_in_window(), 0);
        s.window_start = 50;
        s.record_delivered(&delivered_packet(&mut store, false));
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.delivered_carryover, 1);
        assert_eq!(s.delivered_in_window(), 1);
    }

    #[test]
    fn zero_cycles_yield_zero_throughput() {
        let s = NetStats::new(16);
        assert_eq!(s.throughput_packets(), 0.0);
        assert_eq!(s.dropped_fraction(), 0.0);
        assert_eq!(s.fastpass_fraction(), 0.0);
    }
}
