//! Simulation configuration mirroring Table II of the paper.

use crate::topology::Mesh;
use serde::{Deserialize, Serialize};

/// Key simulation parameters (Table II).
///
/// The defaults reproduce the paper's 8×8 configuration: 1-cycle routers,
/// 5-flit buffers with a single packet per VC (virtual cut-through),
/// 128-bit links, a mix of 1-flit and 5-flit packets.
///
/// # Example
///
/// ```
/// use noc_core::config::SimConfig;
///
/// let cfg = SimConfig::builder()
///     .mesh(8, 8)
///     .vns(0)
///     .vcs_per_vn(4)
///     .seed(7)
///     .build();
/// assert_eq!(cfg.vcs_per_port(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Topology (4×4, 8×8 or 16×16 in the paper).
    pub mesh: Mesh,
    /// Number of virtual networks. 0 means "no VNs": all classes share
    /// the input buffers (FastPass, Pitstop). With `vns = 0` the input
    /// buffer still has `vcs_per_vn` VCs total.
    pub vns: usize,
    /// Virtual channels per VN (or per input buffer when `vns == 0`).
    pub vcs_per_vn: usize,
    /// Buffer depth per VC in flits (Table II: 5).
    pub buffer_flits: usize,
    /// Maximum packet length in flits (Table II mixes 1 and 5).
    pub max_packet_flits: usize,
    /// Capacity of each per-class injection queue at the NI, in packets.
    pub inj_queue_packets: usize,
    /// Capacity of each per-class ejection queue at the NI, in packets.
    pub ej_queue_packets: usize,
    /// Cycles a destination NI takes to consume an ejected packet slot.
    pub ni_consume_cycles: u64,
    /// Cycles before a dropped injection request is regenerated from its
    /// MSHR (§III-C4: regeneration is local and cheap).
    pub mshr_regen_cycles: u64,
    /// RNG seed for deterministic runs.
    pub seed: u64,
}

impl SimConfig {
    /// Starts building a configuration from the Table II defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Total VCs per input port: `max(vns,1) × vcs_per_vn`.
    pub fn vcs_per_port(&self) -> usize {
        self.vns.max(1) * self.vcs_per_vn
    }

    /// Whether this configuration separates message classes into VNs.
    pub fn has_vns(&self) -> bool {
        self.vns > 0
    }

    /// VC index range assigned to `class_index` at an input port.
    ///
    /// With VNs, each class owns a disjoint slice of VCs; without VNs all
    /// classes share the full range (the paper's 0-VN configurations).
    pub fn vc_range_for_class(&self, class_index: usize) -> std::ops::Range<usize> {
        if self.has_vns() {
            let vn = class_index % self.vns;
            vn * self.vcs_per_vn..(vn + 1) * self.vcs_per_vn
        } else {
            0..self.vcs_per_vn
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: packets
    /// must fit in one VC buffer (single-packet-per-VC VCT) and all
    /// capacities must be nonzero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_per_vn == 0 {
            return Err(ConfigError("vcs_per_vn must be nonzero"));
        }
        if self.buffer_flits == 0 {
            return Err(ConfigError("buffer_flits must be nonzero"));
        }
        if self.max_packet_flits > self.buffer_flits {
            return Err(ConfigError(
                "max_packet_flits must fit in one VC buffer (single packet per VC)",
            ));
        }
        if self.inj_queue_packets == 0 || self.ej_queue_packets == 0 {
            return Err(ConfigError("NI queues must have nonzero capacity"));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfigBuilder::default().build()
    }
}

/// Error returned by [`SimConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError(&'static str);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`SimConfig`] (see [`SimConfig::builder`]).
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            cfg: SimConfig {
                mesh: Mesh::new(8, 8),
                vns: 6,
                vcs_per_vn: 2,
                buffer_flits: 5,
                max_packet_flits: 5,
                inj_queue_packets: 4,
                ej_queue_packets: 4,
                ni_consume_cycles: 1,
                mshr_regen_cycles: 32,
                seed: 0xF457_9A55,
            },
        }
    }
}

impl SimConfigBuilder {
    /// Sets the mesh dimensions.
    pub fn mesh(mut self, width: usize, height: usize) -> Self {
        self.cfg.mesh = Mesh::new(width, height);
        self
    }

    /// Sets the number of virtual networks (0 = no VNs).
    pub fn vns(mut self, vns: usize) -> Self {
        self.cfg.vns = vns;
        self
    }

    /// Sets the VCs per VN (or per port when `vns == 0`).
    pub fn vcs_per_vn(mut self, vcs: usize) -> Self {
        self.cfg.vcs_per_vn = vcs;
        self
    }

    /// Sets the VC buffer depth in flits.
    pub fn buffer_flits(mut self, flits: usize) -> Self {
        self.cfg.buffer_flits = flits;
        self
    }

    /// Sets the maximum packet length in flits.
    pub fn max_packet_flits(mut self, flits: usize) -> Self {
        self.cfg.max_packet_flits = flits;
        self
    }

    /// Sets the per-class injection queue capacity in packets.
    pub fn inj_queue_packets(mut self, packets: usize) -> Self {
        self.cfg.inj_queue_packets = packets;
        self
    }

    /// Sets the per-class ejection queue capacity in packets.
    pub fn ej_queue_packets(mut self, packets: usize) -> Self {
        self.cfg.ej_queue_packets = packets;
        self
    }

    /// Sets the NI consumption latency per ejected packet.
    pub fn ni_consume_cycles(mut self, cycles: u64) -> Self {
        self.cfg.ni_consume_cycles = cycles;
        self
    }

    /// Sets the MSHR regeneration delay for dropped requests.
    pub fn mshr_regen_cycles(mut self, cycles: u64) -> Self {
        self.cfg.mshr_regen_cycles = cycles;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    pub fn build(self) -> SimConfig {
        if let Err(e) = self.cfg.validate() {
            panic!("{e}");
        }
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.mesh.num_nodes(), 64);
        assert_eq!(cfg.vns, 6);
        assert_eq!(cfg.vcs_per_vn, 2);
        assert_eq!(cfg.buffer_flits, 5);
        assert_eq!(cfg.max_packet_flits, 5);
        assert_eq!(cfg.vcs_per_port(), 12);
    }

    #[test]
    fn zero_vn_config_shares_vcs() {
        let cfg = SimConfig::builder().vns(0).vcs_per_vn(4).build();
        assert!(!cfg.has_vns());
        assert_eq!(cfg.vcs_per_port(), 4);
        for c in 0..6 {
            assert_eq!(cfg.vc_range_for_class(c), 0..4);
        }
    }

    #[test]
    fn vn_config_partitions_vcs() {
        let cfg = SimConfig::builder().vns(6).vcs_per_vn(2).build();
        assert_eq!(cfg.vc_range_for_class(0), 0..2);
        assert_eq!(cfg.vc_range_for_class(2), 4..6);
        assert_eq!(cfg.vc_range_for_class(5), 10..12);
        // Ranges are disjoint and cover the whole port.
        let mut covered = vec![false; cfg.vcs_per_port()];
        for c in 0..6 {
            for vc in cfg.vc_range_for_class(c) {
                assert!(!covered[vc]);
                covered[vc] = true;
            }
        }
        assert!(covered.into_iter().all(|b| b));
    }

    #[test]
    fn oversized_packets_rejected() {
        let err = SimConfig::builder()
            .buffer_flits(4)
            .max_packet_flits(5)
            .cfg_validate_err();
        assert!(err.to_string().contains("single packet per VC"));
    }

    impl SimConfigBuilder {
        fn cfg_validate_err(self) -> ConfigError {
            self.cfg.validate().unwrap_err()
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_vcs_panics_on_build() {
        let _ = SimConfig::builder().vcs_per_vn(0).build();
    }
}
