//! The bounded explorer: exhaustive interleaving search with a visited
//! set, iterative deepening and a drain-based wedge oracle.
//!
//! # Search space
//!
//! The only nondeterminism in a [`Simulation`] driven by a
//! [`ScriptedWorkload`] is *when* each scripted job enters the network:
//! router arbitration, TDM phase alignment and class rotation are all
//! deterministic functions of the injection schedule. One decision is
//! taken per cycle — [`Decision::TICK`] (advance without injecting) or
//! `Decision::inject(j)` for any still-pending job `j` — so a decision
//! *path* is a complete schedule prefix and covers every injection-order,
//! arbitration and phase interleaving expressible at the configured
//! depth.
//!
//! Simulations are not cloneable (schemes and workloads are opaque boxed
//! state machines), so the explorer is *stateless*: a search node is its
//! decision path, materialized by replaying a fresh simulation from
//! cycle 0. Small configs make replay cheap, and the canonical visited
//! set ([`canon_hash`]) collapses the combinatorial bulk of equivalent
//! interleavings.
//!
//! # Wedge oracle
//!
//! Once every job is injected the remaining evolution is deterministic,
//! and injection can never *resolve* a deadlock (new packets only add
//! buffer pressure; the unbounded source queue accepts them regardless).
//! Any reachable wedge therefore survives along the schedule that injects
//! the remaining jobs immediately — so it is sound to apply the
//! deadlock oracle only at fully-injected frontier states: run the
//! deterministic drain, and if no consumption happens for
//! [`CheckConfig::horizon`] cycles while work remains, the state has
//! wedged. The oracle never reports on its own authority — every wedge
//! is replayed concretely (see [`replay`](crate::replay)) before being
//! believed.

use crate::canon::{canon_hash, CanonParams};
use crate::script::{CtlHandle, JobSpec, ScriptedWorkload};
use noc_core::config::SimConfig;
use noc_sim::audit::{audit, audit_conservation};
use noc_sim::routing::RoutingPolicy;
use noc_sim::waitgraph::WaitGraph;
use noc_sim::{Scheme, Simulation};
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// One scheduling decision: what the adversary does this cycle.
///
/// Encoded as a byte — `0` ticks without injecting, `1 + j` injects job
/// `j` — so a schedule serializes as a plain byte vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Decision(pub u8);

impl Decision {
    /// Advance one cycle without injecting.
    pub const TICK: Decision = Decision(0);

    /// Inject job `j` this cycle.
    pub fn inject(j: usize) -> Decision {
        Decision(u8::try_from(j + 1).expect("job index fits a byte"))
    }

    /// The injected job, if this decision injects.
    pub fn job(self) -> Option<usize> {
        (self.0 > 0).then(|| self.0 as usize - 1)
    }
}

/// Factory producing a fresh scheme instance per materialization.
pub type SchemeFactory = Box<dyn Fn(&SimConfig) -> Box<dyn Scheme>>;

/// A checker configuration: one (topology, scheme, script) point of the
/// verification matrix.
pub struct CheckConfig {
    /// Display name, e.g. `fastpass-2x2`.
    pub name: String,
    /// Simulator configuration (mesh, VCs, queue depths).
    pub sim: SimConfig,
    /// Scheme factory — called once per materialization.
    pub make_scheme: SchemeFactory,
    /// Routing policy factory for wait-graph diagnosis of wedged states.
    pub diag_policy: Box<dyn Fn() -> Box<dyn RoutingPolicy>>,
    /// The scripted jobs.
    pub jobs: Vec<JobSpec>,
    /// Protocol backlog limit (`None`: plain one-way traffic).
    pub backlog_limit: Option<u32>,
    /// Canonicalization parameters (age cap must exceed the scheme's
    /// blocked-time thresholds).
    pub canon: CanonParams,
    /// Consumption-silence horizon (cycles) before the drain oracle
    /// declares a wedge. Must exceed the scheme's longest legitimate
    /// quiet period (TDM rotation, pit phases, regeneration delays).
    pub horizon: u64,
    /// Hard cap on drain length per terminal state.
    pub drain_cap: u64,
    /// Final iterative-deepening depth limit (decisions).
    pub max_depth: usize,
    /// Cap on explored (materialized) search nodes.
    pub node_budget: u64,
    /// Whether this config is a *planted bug*: the checker is expected to
    /// find a wedge (soundness self-test).
    pub expect_wedge: bool,
}

/// Why a wedged drain is stuck, per the wait-graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum WedgeKind {
    /// The wait-for graph over blocked buffer occupants has a cycle:
    /// classic circular buffer wait. Carries the human-readable
    /// `node:port:vc` positions along the cycle.
    BufferCycle(Vec<String>),
    /// No buffer-wait cycle: the network is quiescent (or starved by an
    /// overlay/protocol condition) with undelivered packets — e.g. the
    /// consumer-side backlog chain of a protocol deadlock, or packets
    /// marooned in scheme overlay state.
    Quiescent,
}

/// A concrete deadlock witness: the decision schedule plus how the drain
/// wedged, ready for deterministic replay.
#[derive(Debug, Clone, Serialize)]
pub struct Counterexample {
    /// The decision path from cycle 0 (one decision per cycle).
    pub schedule: Vec<Decision>,
    /// Cycles the drain oracle ran after the last decision before
    /// declaring the wedge.
    pub drain_cycles: u64,
    /// Simulation cycle at which the wedge was declared.
    pub wedge_cycle: u64,
    /// Packets still in flight at the wedge.
    pub in_flight: usize,
    /// Consumptions that had happened (vs. expected).
    pub consumed: u64,
    /// Consumptions the script expected.
    pub expected: u64,
    /// Canonical hash of the wedged state (replay must reproduce it).
    pub state_hash: u64,
    /// Wait-graph diagnosis.
    pub kind: WedgeKind,
}

/// The verdict for one configuration.
#[derive(Debug, Clone, Serialize)]
pub enum Verdict {
    /// Every schedule within bounds drains completely.
    DeadlockFree,
    /// A schedule wedges — here is the witness.
    Wedged(Counterexample),
    /// A structural invariant (Lemmas 1–4 instrumentation, packet
    /// conservation) failed at an explored state.
    InvariantViolation(Violation),
}

/// An invariant failure at a reached state.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// The schedule reaching the violating state.
    pub schedule: Vec<Decision>,
    /// Auditor messages.
    pub errors: Vec<String>,
}

/// Exploration statistics and outcome for one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct CheckReport {
    /// Configuration name.
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Distinct canonical states visited.
    pub states_explored: u64,
    /// Search nodes materialized (replays executed).
    pub nodes_materialized: u64,
    /// Fully-injected frontier states drain-checked.
    pub terminals_drained: u64,
    /// Deepest decision path materialized.
    pub deepest_path: usize,
    /// Depth limit the final iterative-deepening round ran with.
    pub depth_limit: usize,
    /// Paths cut off at the depth limit with jobs still pending (0 ⇒
    /// the state space was exhausted and the verdict is unconditional
    /// within the drain horizon).
    pub truncated_paths: u64,
    /// Whether the node budget ran out (verdict is bounded-only).
    pub budget_exhausted: bool,
}

impl CheckReport {
    /// Whether the verdict matches the configuration's expectation
    /// (planted bugs must wedge; everything else must verify clean).
    pub fn as_expected(&self, cc: &CheckConfig) -> bool {
        matches!(
            (&self.verdict, cc.expect_wedge),
            (Verdict::DeadlockFree, false) | (Verdict::Wedged(_), true)
        )
    }
}

/// Builds the simulation for a config and replays a decision path into
/// it. Shared by the explorer and the replay harness.
pub fn materialize(cc: &CheckConfig, path: &[Decision]) -> (Simulation, CtlHandle) {
    let (wl, ctl) =
        ScriptedWorkload::new(cc.jobs.clone(), cc.sim.mesh.num_nodes(), cc.backlog_limit);
    let scheme = (cc.make_scheme)(&cc.sim);
    let mut sim = Simulation::new(cc.sim.clone(), scheme, Box::new(wl));
    for &d in path {
        if let Some(j) = d.job() {
            ctl.lock().expect("script lock").next_inject = Some(j);
        }
        sim.step();
    }
    (sim, ctl)
}

/// Outcome of draining one fully-injected state.
enum DrainOutcome {
    /// All expected consumptions happened within the cap.
    Drained,
    /// Consumption went silent for the horizon with work remaining.
    Wedged(Counterexample),
}

/// Runs the deterministic drain oracle from a fully-injected state.
fn drain(
    cc: &CheckConfig,
    path: &[Decision],
    sim: &mut Simulation,
    ctl: &CtlHandle,
) -> DrainOutcome {
    let mut silent = 0u64;
    let mut ran = 0u64;
    let mut last_consumed = ctl.lock().expect("script lock").consumed;
    while ran < cc.drain_cap {
        sim.step();
        ran += 1;
        let (consumed, done, expected) = {
            let c = ctl.lock().expect("script lock");
            (c.consumed, c.done(), c.expected)
        };
        if done {
            return DrainOutcome::Drained;
        }
        if consumed > last_consumed {
            last_consumed = consumed;
            silent = 0;
        } else {
            silent += 1;
        }
        if silent >= cc.horizon {
            let kind = diagnose(cc, sim);
            let ctl = ctl.lock().expect("script lock");
            return DrainOutcome::Wedged(Counterexample {
                schedule: path.to_vec(),
                drain_cycles: ran,
                wedge_cycle: sim.core.cycle(),
                in_flight: sim.in_flight(),
                consumed: ctl.consumed,
                expected,
                state_hash: 0, // filled by the caller (needs the ctl lock released)
                kind,
            });
        }
    }
    // Hitting the cap without a silent horizon means consumption is still
    // trickling — not a wedge, but the drain budget is too small to prove
    // completion. Treat as wedged so it surfaces loudly; replay will show
    // the slow progress if it is a false alarm.
    let kind = diagnose(cc, sim);
    let c = ctl.lock().expect("script lock");
    DrainOutcome::Wedged(Counterexample {
        schedule: path.to_vec(),
        drain_cycles: ran,
        wedge_cycle: sim.core.cycle(),
        in_flight: sim.in_flight(),
        consumed: c.consumed,
        expected: c.expected,
        state_hash: 0,
        kind,
    })
}

/// Classifies a wedged state via the wait-for graph.
fn diagnose(cc: &CheckConfig, sim: &Simulation) -> WedgeKind {
    let policy = (cc.diag_policy)();
    let g = WaitGraph::build(&sim.core, policy.as_ref(), 0);
    for start in 0..g.len() {
        if let Some(cycle) = g.find_cycle_from(start) {
            let positions = cycle
                .iter()
                .map(|&i| {
                    let (pos, _pkt) = g.vertex(i);
                    format!("n{}:p{}:v{}", pos.node.index(), pos.port, pos.vc)
                })
                .collect();
            return WedgeKind::BufferCycle(positions);
        }
    }
    WedgeKind::Quiescent
}

/// Internal mutable search state.
struct Search<'a> {
    cc: &'a CheckConfig,
    /// Canonical hash → shallowest depth at which the state was expanded.
    visited: HashMap<u64, usize>,
    /// Terminal states already drain-checked.
    drained: HashSet<u64>,
    nodes: u64,
    terminals: u64,
    deepest: usize,
    truncated: u64,
    budget_out: bool,
}

/// What a DFS branch resolved to.
enum Found {
    Nothing,
    Wedge(Counterexample),
    Violation(Vec<Decision>, Vec<String>),
}

impl Search<'_> {
    /// Expands the node at `path`; `depth_limit` bounds further decisions.
    fn dfs(&mut self, path: &mut Vec<Decision>, depth_limit: usize) -> Found {
        if self.nodes >= self.cc.node_budget {
            self.budget_out = true;
            return Found::Nothing;
        }
        self.nodes += 1;
        self.deepest = self.deepest.max(path.len());

        let (mut sim, ctl) = materialize(self.cc, path);
        let hash = {
            let c = ctl.lock().expect("script lock");
            canon_hash(&sim, &c, &self.cc.canon)
        };

        // Lemma instrumentation + conservation at every explored state.
        let mut errors: Vec<String> = audit(&sim.core)
            .into_iter()
            .map(|e| e.to_string())
            .collect();
        errors.extend(
            audit_conservation(
                &sim.core,
                sim.scheme().overlay_packets(),
                sim.total_consumed(),
            )
            .into_iter()
            .map(|e| e.to_string()),
        );
        if !errors.is_empty() {
            return Found::Violation(path.clone(), errors);
        }

        let pending = ctl.lock().expect("script lock").pending();
        if pending.is_empty() {
            // Fully injected: deterministic from here — drain-check once
            // per canonical state.
            if self.drained.insert(hash) {
                self.terminals += 1;
                if let DrainOutcome::Wedged(mut cex) = drain(self.cc, path, &mut sim, &ctl) {
                    let c = ctl.lock().expect("script lock");
                    cex.state_hash = canon_hash(&sim, &c, &self.cc.canon);
                    return Found::Wedge(cex);
                }
            }
            return Found::Nothing;
        }

        // Already expanded at this depth or shallower?
        match self.visited.get(&hash) {
            Some(&d) if d <= path.len() => return Found::Nothing,
            _ => {
                self.visited.insert(hash, path.len());
            }
        }

        if path.len() >= depth_limit {
            self.truncated += 1;
            return Found::Nothing;
        }

        drop(sim); // children re-materialize; free before recursing

        let mut choices = Vec::with_capacity(pending.len() + 1);
        for j in &pending {
            choices.push(Decision::inject(*j));
        }
        choices.push(Decision::TICK);
        for d in choices {
            path.push(d);
            let found = self.dfs(path, depth_limit);
            path.pop();
            match found {
                Found::Nothing => {}
                other => return other,
            }
        }
        Found::Nothing
    }
}

/// Runs the bounded check for one configuration: iterative-deepening DFS
/// until the space is exhausted (no truncated paths), a counterexample
/// is found, or the node/depth budgets run out.
pub fn check(cc: &CheckConfig) -> CheckReport {
    let mut depth = cc.jobs.len().max(1) * 2;
    let mut search = Search {
        cc,
        visited: HashMap::new(),
        drained: HashSet::new(),
        nodes: 0,
        terminals: 0,
        deepest: 0,
        truncated: 0,
        budget_out: false,
    };
    loop {
        depth = depth.min(cc.max_depth);
        search.visited.clear();
        search.drained.clear();
        search.truncated = 0;
        let found = search.dfs(&mut Vec::new(), depth);
        let verdict = match found {
            Found::Wedge(cex) => Some(Verdict::Wedged(cex)),
            Found::Violation(schedule, errors) => {
                Some(Verdict::InvariantViolation(Violation { schedule, errors }))
            }
            Found::Nothing => {
                if search.truncated == 0 || search.budget_out || depth >= cc.max_depth {
                    Some(Verdict::DeadlockFree)
                } else {
                    None // deepen and retry
                }
            }
        };
        if let Some(verdict) = verdict {
            return CheckReport {
                name: cc.name.clone(),
                verdict,
                states_explored: search.visited.len() as u64 + search.drained.len() as u64,
                nodes_materialized: search.nodes,
                terminals_drained: search.terminals,
                deepest_path: search.deepest,
                depth_limit: depth,
                truncated_paths: search.truncated,
                budget_exhausted: search.budget_out,
            };
        }
        depth *= 2;
    }
}
