//! Deterministic counterexample replay.
//!
//! The explorer's wedge oracle runs on abstracted state; before a
//! counterexample is believed (or shipped in a report) it is re-executed
//! here, concretely, through a fresh [`Simulation`] with full tracing
//! enabled. The replay re-applies the decision schedule cycle by cycle,
//! runs the same drain, and confirms the wedge reproduces **bitwise**:
//! the canonical state hash at the wedge cycle, the consumption count
//! and the in-flight population must all match the explorer's record.
//! The trace buffer is rendered to a Chrome/Perfetto JSON artifact so a
//! human can open the exact deadlocked execution in a timeline viewer.

use crate::canon::canon_hash;
use crate::explore::{materialize, CheckConfig, Counterexample};
use noc_trace::{chrome_trace_json, TraceConfig};
use serde::Serialize;

/// Result of replaying a counterexample.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayResult {
    /// Whether the wedge reproduced bitwise (hash + consumed + in-flight
    /// all equal to the explorer's record).
    pub confirmed: bool,
    /// Canonical state hash at the replayed wedge cycle.
    pub state_hash: u64,
    /// Consumptions at the replayed wedge cycle.
    pub consumed: u64,
    /// In-flight packets at the replayed wedge cycle.
    pub in_flight: usize,
    /// Mismatch descriptions (empty when confirmed).
    pub mismatches: Vec<String>,
}

/// Re-executes `cex` against a fresh simulation of `cc` with full
/// tracing, returning the confirmation result and the Chrome-trace JSON
/// of the whole doomed execution.
pub fn replay(cc: &CheckConfig, cex: &Counterexample) -> (ReplayResult, String) {
    // materialize() would replay the schedule too, but tracing must be on
    // from cycle 0, so drive the steps here.
    let (mut sim, ctl) = materialize(cc, &[]);
    sim.set_trace(&TraceConfig::full());
    for &d in &cex.schedule {
        if let Some(j) = d.job() {
            ctl.lock().expect("script lock").next_inject = Some(j);
        }
        sim.step();
    }
    for _ in 0..cex.drain_cycles {
        sim.step();
    }

    let state_hash = {
        let c = ctl.lock().expect("script lock");
        canon_hash(&sim, &c, &cc.canon)
    };
    let consumed = ctl.lock().expect("script lock").consumed;
    let in_flight = sim.in_flight();

    let mut mismatches = Vec::new();
    if sim.core.cycle() != cex.wedge_cycle {
        mismatches.push(format!(
            "cycle: replay {} vs recorded {}",
            sim.core.cycle(),
            cex.wedge_cycle
        ));
    }
    if state_hash != cex.state_hash {
        mismatches.push(format!(
            "state hash: replay {state_hash:#018x} vs recorded {:#018x}",
            cex.state_hash
        ));
    }
    if consumed != cex.consumed {
        mismatches.push(format!(
            "consumed: replay {consumed} vs recorded {}",
            cex.consumed
        ));
    }
    if in_flight != cex.in_flight {
        mismatches.push(format!(
            "in-flight: replay {in_flight} vs recorded {}",
            cex.in_flight
        ));
    }

    let trace = chrome_trace_json(sim.tracer());
    (
        ReplayResult {
            confirmed: mismatches.is_empty(),
            state_hash,
            consumed,
            in_flight,
            mismatches,
        },
        trace,
    )
}
