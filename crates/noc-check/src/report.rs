//! Machine-readable checker summaries (the CI artifact).

use crate::explore::{CheckReport, Verdict};
use crate::replay::ReplayResult;
use serde::Serialize;

/// Outcome of one configuration, including replay confirmation when a
/// counterexample was produced.
#[derive(Debug, Serialize)]
pub struct ConfigOutcome {
    /// The exploration report.
    pub report: CheckReport,
    /// Whether the verdict matches the config's expectation.
    pub as_expected: bool,
    /// Replay confirmation (present iff the verdict is a wedge).
    pub replay: Option<ReplayResult>,
    /// Trace artifact path (present iff a wedge was replayed to disk).
    pub trace_path: Option<String>,
    /// Wall-clock seconds spent exploring.
    pub seconds: f64,
}

/// The full run summary serialized to `summary.json`.
#[derive(Debug, Serialize)]
pub struct Summary {
    /// Tool version (crate version at build time).
    pub version: &'static str,
    /// Which matrices ran.
    pub matrices: Vec<String>,
    /// Static lemma-check failures (empty = all held).
    pub static_failures: Vec<String>,
    /// Per-config outcomes.
    pub configs: Vec<ConfigOutcome>,
    /// Overall pass/fail.
    pub ok: bool,
}

impl Summary {
    /// One-line human rendering of a config outcome.
    pub fn describe(o: &ConfigOutcome) -> String {
        let verdict = match &o.report.verdict {
            Verdict::DeadlockFree => {
                if o.report.truncated_paths == 0 && !o.report.budget_exhausted {
                    "deadlock-free (exhaustive within bounds)".to_string()
                } else {
                    format!(
                        "deadlock-free (bounded: {} truncated paths{})",
                        o.report.truncated_paths,
                        if o.report.budget_exhausted {
                            ", budget exhausted"
                        } else {
                            ""
                        }
                    )
                }
            }
            Verdict::Wedged(cex) => format!(
                "WEDGE after {} decisions + {} drain cycles ({} of {} consumed, {} in flight)",
                cex.schedule.len(),
                cex.drain_cycles,
                cex.consumed,
                cex.expected,
                cex.in_flight
            ),
            Verdict::InvariantViolation(v) => {
                format!("INVARIANT VIOLATION: {}", v.errors.join("; "))
            }
        };
        let replayed = match &o.replay {
            Some(r) if r.confirmed => " [replay: confirmed bitwise]",
            Some(_) => " [replay: MISMATCH]",
            None => "",
        };
        format!(
            "{:28} {} — {} states, {} nodes, {} terminals, depth {}/{} in {:.1}s{}",
            o.report.name,
            verdict,
            o.report.states_explored,
            o.report.nodes_materialized,
            o.report.terminals_drained,
            o.report.deepest_path,
            o.report.depth_limit,
            o.seconds,
            replayed
        )
    }
}
