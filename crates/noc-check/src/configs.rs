//! The verification matrix: named checker configurations over small
//! meshes, plus the static (non-exploratory) lemma checks.
//!
//! Two tiers mirror the CI split:
//!
//! * [`matrix_2x2`] — the per-PR tier: every scheme on a 2×2 mesh with a
//!   tight VC/queue configuration and a small scripted job set. Bounds
//!   are sized so FastPass and the credit baselines exhaust their
//!   schedule space (zero truncated paths) in seconds.
//! * [`matrix_3x3`] — the weekly tier: deeper, budgeted exploration on a
//!   3×3 mesh. Verdicts here are bounded (the budget usually runs out
//!   first) but cover a diameter-3 topology the 2×2 cannot.
//!
//! [`planted`] is the checker's own soundness test: the *broken*
//! configuration of `tests/deadlock.rs` (shared buffers, zero VNs, plain
//! credit VCT, consumer backlog) shrunk to 2×2 with a scripted request
//! pattern that admits the same wedge — the checker must find it, and
//! its replay must reproduce it bitwise.

use crate::canon::CanonParams;
use crate::explore::CheckConfig;
use crate::script::JobSpec;
use baselines::{minbd::MinBdConfig, pitstop::PitstopConfig, spin::SpinConfig};
use baselines::{CreditVct, EscapeVc, MinBd, Pitstop, Spin};
use fastpass::irregular::{holistic_path, segment, IrregularTopo};
use fastpass::lane::{verify_rotation_disjoint, verify_slot_disjoint};
use fastpass::{FastPass, FastPassConfig, TdmSchedule};
use noc_core::config::SimConfig;
use noc_core::packet::MessageClass;
use noc_core::topology::Mesh;
use noc_sim::routing::{DorXy, FullyAdaptive};

/// Deterministic seed for every checker simulation. The schemes' hidden
/// RNGs (adaptive tie-breaks, deflection draws) are part of the system
/// under test; a fixed seed keeps replays bitwise.
const SEED: u64 = 11;

/// A tight 2×2 base config: 1 VC per VN, 2-deep NI queues.
fn base_2x2(vns: usize, vcs_per_vn: usize) -> SimConfig {
    SimConfig::builder()
        .mesh(2, 2)
        .vns(vns)
        .vcs_per_vn(vcs_per_vn)
        .inj_queue_packets(2)
        .ej_queue_packets(2)
        .seed(SEED)
        .build()
}

/// A tight 3×3 base config.
fn base_3x3(vns: usize, vcs_per_vn: usize) -> SimConfig {
    SimConfig::builder()
        .mesh(3, 3)
        .vns(vns)
        .vcs_per_vn(vcs_per_vn)
        .inj_queue_packets(2)
        .ej_queue_packets(2)
        .seed(SEED)
        .build()
}

/// Cross-flow requests on a 2×2: the two diagonals plus one row flow.
/// Three jobs keep the interleaving space exhaustible.
fn cross_jobs_2x2() -> Vec<JobSpec> {
    vec![JobSpec::req(0, 3), JobSpec::req(3, 0), JobSpec::req(1, 2)]
}

/// Cross-flow requests on a 3×3: corner exchange through the center.
fn cross_jobs_3x3() -> Vec<JobSpec> {
    vec![JobSpec::req(0, 8), JobSpec::req(8, 0), JobSpec::req(2, 6)]
}

/// The planted-wedge job set (see [`planted`]): paired
/// request/counter-request flows between the bottom row and node
/// corners, sized so refused requests can fill both ejection queues and
/// strand each node's response behind the other's stuck request.
fn planted_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::req(0, 3),
        JobSpec::req(1, 2),
        JobSpec::req(2, 3),
        JobSpec::req(3, 2),
        JobSpec::req(3, 2),
        JobSpec::req(2, 3),
    ]
}

/// The per-PR 2×2 matrix.
pub fn matrix_2x2() -> Vec<CheckConfig> {
    let mut v = Vec::new();

    // FastPass at the paper's zero-VN shared-buffer point, including the
    // consumer-backlog protocol model it exists to survive.
    let sim = base_2x2(0, 1);
    v.push(CheckConfig {
        name: "fastpass-2x2".into(),
        make_scheme: Box::new(|cfg| {
            Box::new(FastPass::new(
                cfg,
                FastPassConfig {
                    slot_cycles: None, // paper formula: 20 cycles on 2x2
                    ..FastPassConfig::default()
                },
            ))
        }),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim,
        jobs: cross_jobs_2x2(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 24 },
        horizon: 512,
        drain_cap: 60_000,
        // One full TDM rotation on 2x2 is 80 cycles; the depth limit must
        // cover injected traffic draining plus a full rotation wrap for
        // idle-tick chains to close against the visited set.
        max_depth: 256,
        node_budget: 2_500_000,
        expect_wedge: false,
    });

    // Plain credit VCT, zero VNs, *without* the protocol model: pure
    // network-level check (XY is cycle-free; must verify clean).
    v.push(CheckConfig {
        name: "vct-xy0-2x2".into(),
        make_scheme: Box::new(|_| Box::new(CreditVct::xy(0))),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim: base_2x2(0, 1),
        jobs: cross_jobs_2x2(),
        backlog_limit: None,
        canon: CanonParams { age_cap: 8 },
        horizon: 256,
        drain_cap: 20_000,
        max_depth: 48,
        node_budget: 40_000,
        expect_wedge: false,
    });

    // The conventional fix: 6 VNs isolate the classes; the same protocol
    // model that wedges the zero-VN config must complete.
    v.push(CheckConfig {
        name: "vct-xy6-2x2".into(),
        make_scheme: Box::new(|_| Box::new(CreditVct::xy(6))),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim: base_2x2(6, 1),
        jobs: cross_jobs_2x2(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 8 },
        horizon: 256,
        drain_cap: 20_000,
        max_depth: 48,
        node_budget: 40_000,
        expect_wedge: false,
    });

    // Pitstop at zero VNs with the protocol model (Table I: resolves the
    // protocol deadlock). Short class period so a full class rotation
    // fits the horizon.
    v.push(CheckConfig {
        name: "pitstop-2x2".into(),
        make_scheme: Box::new(|cfg| {
            Box::new(Pitstop::new(
                cfg.mesh.num_nodes(),
                SEED,
                PitstopConfig {
                    class_period: 8,
                    pit_capacity: 2,
                    threshold: 4,
                },
            ))
        }),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim: base_2x2(0, 1),
        jobs: cross_jobs_2x2(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 12 },
        horizon: 1024,
        drain_cap: 80_000,
        // The class rotation is 8 × 6 = 48 cycles; see the FastPass note.
        max_depth: 96,
        node_budget: 600_000,
        expect_wedge: false,
    });

    // SPIN: fully-adaptive routing, 1 VC per VN — the network-deadlock
    // baseline. Low detection threshold so probe/spin machinery actually
    // engages inside the explored window.
    v.push(CheckConfig {
        name: "spin-2x2".into(),
        make_scheme: Box::new(|_| {
            Box::new(Spin::new(
                SEED,
                SpinConfig {
                    detection_threshold: 16,
                    check_interval: 4,
                },
            ))
        }),
        diag_policy: Box::new(|| Box::new(FullyAdaptive::new(SEED))),
        sim: base_2x2(6, 1),
        jobs: cross_jobs_2x2(),
        backlog_limit: None,
        canon: CanonParams { age_cap: 20 },
        horizon: 1024,
        drain_cap: 40_000,
        max_depth: 48,
        node_budget: 60_000,
        expect_wedge: false,
    });

    // Duato-style escape VCs: adaptive inner VCs + XY escape lane.
    v.push(CheckConfig {
        name: "escape-vc-2x2".into(),
        make_scheme: Box::new(|_| Box::new(EscapeVc::new(SEED))),
        diag_policy: Box::new(|| Box::new(FullyAdaptive::new(SEED))),
        sim: base_2x2(6, 2),
        jobs: cross_jobs_2x2(),
        backlog_limit: None,
        canon: CanonParams { age_cap: 8 },
        horizon: 512,
        drain_cap: 20_000,
        max_depth: 40,
        node_budget: 40_000,
        expect_wedge: false,
    });

    // MinBD at *minimal* buffering — 1-flit side buffer, 1-flit eject
    // bandwidth — the deflection-draw edge case named by the issue.
    v.push(CheckConfig {
        name: "minbd-min-2x2".into(),
        make_scheme: Box::new(|cfg| {
            Box::new(MinBd::new(
                cfg.mesh.num_nodes(),
                SEED,
                MinBdConfig {
                    side_capacity: 1,
                    eject_bandwidth: 1,
                },
            ))
        }),
        diag_policy: Box::new(|| Box::new(FullyAdaptive::new(SEED))),
        sim: base_2x2(0, 1),
        jobs: cross_jobs_2x2(),
        backlog_limit: None,
        canon: CanonParams { age_cap: 8 },
        horizon: 512,
        drain_cap: 20_000,
        max_depth: 40,
        node_budget: 40_000,
        expect_wedge: false,
    });

    v
}

/// The weekly 3×3 matrix: deeper topology, budgeted verdicts.
pub fn matrix_3x3() -> Vec<CheckConfig> {
    let mut v = Vec::new();

    v.push(CheckConfig {
        name: "fastpass-3x3".into(),
        make_scheme: Box::new(|cfg| {
            Box::new(FastPass::new(
                cfg,
                FastPassConfig {
                    slot_cycles: None,
                    ..FastPassConfig::default()
                },
            ))
        }),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim: base_3x3(0, 1),
        jobs: cross_jobs_3x3(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 24 },
        horizon: 1024,
        drain_cap: 120_000,
        // The 3x3 rotation is longer than the 2x2's and the job set's
        // drain is slower; this depth lets tick-chains wrap it, but the
        // budget is what actually ends the search (bounded verdict by
        // design on the weekly tier).
        max_depth: 384,
        node_budget: 4_000_000,
        expect_wedge: false,
    });

    v.push(CheckConfig {
        name: "vct-xy6-3x3".into(),
        make_scheme: Box::new(|_| Box::new(CreditVct::xy(6))),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim: base_3x3(6, 1),
        jobs: cross_jobs_3x3(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 8 },
        horizon: 512,
        drain_cap: 40_000,
        max_depth: 64,
        node_budget: 100_000,
        expect_wedge: false,
    });

    v.push(CheckConfig {
        name: "pitstop-3x3".into(),
        make_scheme: Box::new(|cfg| {
            Box::new(Pitstop::new(
                cfg.mesh.num_nodes(),
                SEED,
                PitstopConfig {
                    class_period: 8,
                    pit_capacity: 2,
                    threshold: 4,
                },
            ))
        }),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim: base_3x3(0, 1),
        jobs: cross_jobs_3x3(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 12 },
        horizon: 1024,
        drain_cap: 120_000,
        // Class rotation 8 x 6 = 48 cycles, as on the 2x2.
        max_depth: 192,
        node_budget: 1_500_000,
        expect_wedge: false,
    });

    v
}

/// The planted bug: zero VNs, plain credit VCT, shared single-VC
/// buffers, 1-deep NI queues, consumer backlog limit 1 — the 2×2
/// miniature of `tests/deadlock.rs`'s
/// `zero_vn_plain_vct_wedges_on_protocol_traffic`. The checker is
/// *expected* to produce a wedge counterexample here; a clean verdict
/// means the checker is unsound and CI must fail.
pub fn planted() -> CheckConfig {
    let sim = SimConfig::builder()
        .mesh(2, 2)
        .vns(0)
        .vcs_per_vn(1)
        .inj_queue_packets(1)
        .ej_queue_packets(1)
        .seed(SEED)
        .build();
    CheckConfig {
        name: "planted-vct0-protocol-2x2".into(),
        make_scheme: Box::new(|_| Box::new(CreditVct::xy(0))),
        diag_policy: Box::new(|| Box::new(DorXy)),
        sim,
        jobs: planted_jobs(),
        backlog_limit: Some(1),
        canon: CanonParams { age_cap: 8 },
        horizon: 256,
        drain_cap: 20_000,
        max_depth: 48,
        node_budget: 400_000,
        expect_wedge: true,
    }
}

/// Looks up a config by name across both matrices and the planted bug.
pub fn by_name(name: &str) -> Option<CheckConfig> {
    matrix_2x2()
        .into_iter()
        .chain(matrix_3x3())
        .chain(std::iter::once(planted()))
        .find(|c| c.name == name)
}

/// Static (non-exploratory) FastPass lemma checks for a mesh: the TDM
/// partition lanes must be pairwise disjoint in every slot of a full
/// rotation (Lemma 1's premise — a FastPass-Packet never waits for a
/// buffer held by another partition's traffic).
pub fn fastpass_static_lemma_failures(mesh: Mesh, vcs_per_port: usize) -> Vec<String> {
    let mut fails = Vec::new();
    let schedule = TdmSchedule::new(mesh, vcs_per_port);
    if let Err(c) = verify_rotation_disjoint(mesh, schedule) {
        fails.push(format!("rotation lanes overlap: {c}"));
    }
    for probe in [0, schedule.slot_cycles() / 2, schedule.slot_cycles() - 1] {
        if let Err(c) = verify_slot_disjoint(mesh, schedule, probe) {
            fails.push(format!("mid-slot lanes overlap: {c}"));
        }
    }
    fails
}

/// The irregular smoke point: a 4×4 mesh with the `5 ↔ 6` channel
/// disabled. §III-F's construction must still yield a holistic path
/// (Eulerian circuit over the remaining channels) and segment it into
/// disjoint lanes covering every directed link.
pub fn irregular_smoke_topo() -> IrregularTopo {
    let (w, h) = (4usize, 4usize);
    let mut t = IrregularTopo::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let n = y * w + x;
            if x + 1 < w && !(n == 5 && n + 1 == 6) {
                t.add_channel(n, n + 1);
            }
            if y + 1 < h {
                t.add_channel(n, n + w);
            }
        }
    }
    t
}

/// Validates the irregular smoke point end to end: connectivity, the
/// holistic path, and lane-segmentation disjointness/coverage for every
/// partition count FastPass would use. Returns failure descriptions.
pub fn irregular_static_failures() -> Vec<String> {
    let mut fails = Vec::new();
    let topo = irregular_smoke_topo();
    if !topo.is_connected() {
        fails.push("disabled-link topology is disconnected".into());
        return fails;
    }
    let path = match holistic_path(&topo) {
        Ok(p) => p,
        Err(e) => {
            fails.push(format!("holistic path failed: {e}"));
            return fails;
        }
    };
    let links = topo.directed_links().len();
    if path.len() != links {
        fails.push(format!(
            "holistic path covers {} of {links} directed links",
            path.len()
        ));
    }
    for p in [2, 4, 8] {
        let segs = segment(&path, p);
        let total: usize = segs.iter().map(|s| s.len()).sum();
        if segs.len() != p || total != path.len() {
            fails.push(format!("segmentation into {p} lanes lost links"));
        }
        let mut seen = std::collections::HashSet::new();
        for s in &segs {
            for &e in s {
                if !seen.insert(e) {
                    fails.push(format!("lane overlap on directed link {e:?} at p={p}"));
                }
            }
        }
    }
    fails
}

/// Every job in every matrix config references valid nodes and classes —
/// cheap self-check used by the CLI before exploring.
pub fn validate(cc: &CheckConfig) -> Result<(), String> {
    let n = cc.sim.mesh.num_nodes();
    for (i, j) in cc.jobs.iter().enumerate() {
        if j.src >= n || j.dst >= n {
            return Err(format!("job {i} endpoint out of range for {n} nodes"));
        }
        if j.src == j.dst {
            return Err(format!("job {i} is a self-send"));
        }
        if cc.backlog_limit.is_some() && j.class == MessageClass::Response {
            return Err(format!(
                "job {i}: scripted responses collide with the protocol model"
            ));
        }
    }
    Ok(())
}
