//! Canonical state abstraction over a running [`Simulation`].
//!
//! A system state is the concatenation, in a fixed scan order, of every
//! behaviour-relevant component: VC occupants (flit counters, allocated
//! routes, saturated blocked-ages), NI queues (source, injection,
//! ejection, regeneration, the injection stream), router-local control
//! state (switch-allocation and class round-robin pointers, the ejection
//! lock), the scripted workload's protocol overlay (backlogs, job
//! status), and whatever the scheme exports through
//! [`Scheme::export_state`](noc_sim::Scheme::export_state).
//!
//! Two normalizations make the state *canonical* — equal for logically
//! identical states reached along different interleavings:
//!
//! * **Packet renaming**: [`PacketId`]s are assigned in creation order,
//!   which is schedule-dependent; every id is replaced by its *job id*
//!   from the [`ScriptCtl`], which is schedule-independent.
//! * **Time relativization**: absolute cycle values (ready times, last
//!   progress, regeneration deadlines) are folded as now-relative deltas,
//!   saturated at `age_cap`. Saturation is exact for schemes whose only
//!   time sensitivity is a threshold comparison (choose
//!   `age_cap > threshold`); for age-*ordered* schemes (MinBD's
//!   oldest-first sort) it is a documented over-merge — see DESIGN.md.
//!
//! The digest is FNV-1a over the resulting word stream. The visited set
//! stores only the 64-bit hash; a collision would silently merge two
//! distinct states, which (like every abstraction here) can only cause a
//! missed schedule, never a false counterexample — every reported
//! counterexample is replayed concretely before being believed.

use crate::script::ScriptCtl;
use noc_core::packet::{PacketId, CLASSES};
use noc_core::topology::NUM_PORTS;
use noc_sim::{ExportItem, Simulation, StateExport};

/// Canonicalization knobs.
#[derive(Debug, Clone, Copy)]
pub struct CanonParams {
    /// Saturation bound for now-relative ages/deadlines. Must exceed
    /// every blocked-time threshold the scheme under test compares
    /// against (SPIN detection, Pitstop absorption) for the abstraction
    /// to be exact.
    pub age_cap: u64,
}

impl Default for CanonParams {
    fn default() -> Self {
        CanonParams { age_cap: 16 }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a word folder.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Folds a packet id as its canonical job id. Packets unknown to the
/// script (there should be none) fold as a tagged descriptor of their
/// store record instead, so the digest stays total.
fn fold_pkt(h: &mut Fnv, sim: &Simulation, ctl: &ScriptCtl, pkt: PacketId) {
    match ctl.job_of(pkt) {
        Some(job) => {
            h.word(2);
            h.word(job);
        }
        None => {
            let p = sim.core.store.get(pkt);
            h.word(3);
            h.word(p.src.index() as u64);
            h.word(p.dst.index() as u64);
            h.word(p.class.index() as u64);
            h.word(p.len_flits as u64);
        }
    }
}

/// Computes the canonical digest of the simulation's current state.
pub fn canon_hash(sim: &Simulation, ctl: &ScriptCtl, params: &CanonParams) -> u64 {
    let core = &sim.core;
    let now = core.cycle();
    let cap = params.age_cap;
    let age = |cycle: u64| now.saturating_sub(cycle).min(cap);
    let deadline = |cycle: u64| cycle.saturating_sub(now).min(cap);
    let mut h = Fnv::new();
    let vcs = core.vcs_per_port();

    // ---- VC buffers -----------------------------------------------------
    for node in core.mesh().nodes() {
        for port in 0..NUM_PORTS {
            let input = core.input(node, port);
            for vc in 0..vcs {
                match input.occupant(vc) {
                    None => h.word(0),
                    Some(occ) => {
                        h.word(1);
                        fold_pkt(&mut h, sim, ctl, occ.pkt);
                        h.word(occ.len as u64);
                        h.word(occ.arrived as u64);
                        h.word(occ.sent as u64);
                        h.word(occ.route.map(|p| p.index() as u64 + 1).unwrap_or(0));
                        h.word(occ.out_vc.map(|v| v as u64 + 1).unwrap_or(0));
                        h.word(age(occ.head_arrival));
                        h.word(age(occ.last_progress));
                    }
                }
            }
        }
    }

    // ---- NIs ------------------------------------------------------------
    for node in core.mesh().nodes() {
        let ni = core.ni(node);
        for class in CLASSES {
            for pkt in ni.source_iter(class) {
                fold_pkt(&mut h, sim, ctl, pkt);
            }
            h.word(u64::MAX);
            for pkt in ni.inj_iter(class) {
                fold_pkt(&mut h, sim, ctl, pkt);
            }
            h.word(u64::MAX);
            for e in ni.ej_iter(class) {
                fold_pkt(&mut h, sim, ctl, e.pkt);
                h.word(deadline(e.ready));
            }
            h.word(u64::MAX);
            h.word(ni.ej_inflight(class) as u64);
            match ni.ej_reservation(class) {
                Some(pkt) => fold_pkt(&mut h, sim, ctl, pkt),
                None => h.word(0),
            }
        }
        match ni.inj_stream {
            Some(s) => {
                h.word(1);
                fold_pkt(&mut h, sim, ctl, s.pkt);
                h.word(s.vc as u64);
                h.word(s.flits_sent as u64);
                h.word(s.len as u64);
            }
            None => h.word(0),
        }
        for (pkt, ready) in ni.regen_iter() {
            fold_pkt(&mut h, sim, ctl, pkt);
            h.word(deadline(ready));
        }
        h.word(u64::MAX);
    }

    // ---- Router control state -------------------------------------------
    for node in core.mesh().nodes() {
        let r = core.router(node);
        for rr in &r.sa_rr {
            h.word(rr.priority() as u64);
        }
        h.word(r.inj_class_rr.priority() as u64);
        match r.eject_lock {
            Some((p, v)) => {
                h.word(1);
                h.word(p as u64);
                h.word(v as u64);
            }
            None => h.word(0),
        }
    }

    // ---- Scripted-workload overlay --------------------------------------
    for &b in &ctl.backlog {
        h.word(b as u64);
    }
    for &inj in &ctl.injected {
        h.word(inj as u64);
    }
    h.word(ctl.consumed);

    // ---- Scheme overlay --------------------------------------------------
    let mut ex = StateExport::new();
    sim.scheme().export_state(core, &mut ex);
    for item in ex.items() {
        match *item {
            ExportItem::Word(w) => {
                h.word(4);
                h.word(w);
            }
            ExportItem::Pkt(p) => fold_pkt(&mut h, sim, ctl, p),
            ExportItem::NoPkt => h.word(5),
        }
    }

    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_folds_distinct_words_distinctly() {
        let mut a = Fnv::new();
        a.word(1);
        a.word(2);
        let mut b = Fnv::new();
        b.word(2);
        b.word(1);
        assert_ne!(a.0, b.0, "order must matter");
    }
}
