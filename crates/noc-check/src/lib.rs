//! `noc-check` — a bounded model checker for deadlock freedom.
//!
//! The simulator's dynamic tests sample schedules; this crate *searches*
//! them. Over deliberately small configurations (2×2 and 3×3 meshes, one
//! or two VCs, a handful of scripted packets) it explores every
//! injection/arbitration/TDM-phase interleaving the adversary can
//! express, checks the paper's invariants at every reached state, and
//! drains every fully-injected frontier state to verify the network
//! always delivers.
//!
//! The pipeline, one module per stage:
//!
//! * [`script`] — the adversary-controlled workload: a finite job list
//!   injected exactly when the explorer decides, with a deterministic
//!   replica of the protocol-backlog deadlock mechanism.
//! * [`canon`] — the state abstraction: packed occupant/queue/overlay
//!   words, packet-to-job renaming, saturated relative ages, FNV-1a
//!   digest.
//! * [`explore`] — replay-based iterative-deepening DFS with a visited
//!   set, per-state invariant audits, and the drain wedge-oracle.
//! * [`replay`] — bitwise counterexample confirmation through a fresh
//!   traced simulation, producing a Perfetto-loadable artifact.
//! * [`configs`] — the named verification matrices and static lemma
//!   checks (TDM lane disjointness, irregular-topology lanes).
//! * [`report`] — the serialized run summary CI uploads.
//!
//! Soundness posture: abstractions (hashing, age saturation, hidden
//! scheme RNG) can only *merge* states and therefore miss schedules —
//! they can never fabricate a counterexample, because every reported
//! wedge is replayed concretely before it is believed. The planted
//! configuration ([`configs::planted`]) keeps the other direction
//! honest: a checker that stops finding the known wedge fails CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod configs;
pub mod explore;
pub mod replay;
pub mod report;
pub mod script;

pub use canon::{canon_hash, CanonParams};
pub use explore::{check, CheckConfig, CheckReport, Counterexample, Decision, Verdict, WedgeKind};
pub use replay::{replay, ReplayResult};
pub use script::{CtlHandle, JobSpec, ScriptCtl, ScriptedWorkload};
