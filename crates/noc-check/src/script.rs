//! The scripted workload: a finite, adversary-controlled job set.
//!
//! The model checker explores *when* traffic enters the network, so the
//! workload must not make that decision itself. [`ScriptedWorkload`]
//! injects exactly one job per cycle when the explorer tells it to
//! (through the shared [`ScriptCtl`]) and otherwise stays silent. Every
//! packet it ever creates is tagged with a *job id* — a logical identity
//! that is stable across interleavings — which is what lets the
//! canonicalizer rename [`PacketId`]s (assigned in creation order, which
//! differs per interleaving) into a schedule-independent space.
//!
//! The optional protocol model replicates the mechanism of
//! `traffic::ProtocolWorkload`'s deadlock demonstration deterministically:
//! consuming a non-sink message at its destination raises that node's
//! *backlog* and emits a sink-class response back to the requester; while
//! a node's backlog is at the limit, its consumer refuses further
//! non-sink messages (Lemma 3's "a stalled core stops draining request
//! queues"). Sink classes are always consumable.

use noc_core::packet::{MessageClass, Packet, PacketId};
use noc_core::topology::NodeId;
use noc_sim::network::NetworkCore;
use noc_sim::Workload;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One unit of scripted traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Message class.
    pub class: MessageClass,
    /// Length in flits.
    pub len: u8,
}

impl JobSpec {
    /// A 1-flit request `src → dst`.
    pub fn req(src: usize, dst: usize) -> Self {
        JobSpec {
            src,
            dst,
            class: MessageClass::Request,
            len: 1,
        }
    }
}

/// Shared control/observation block between the explorer and the
/// workload. The explorer sets [`next_inject`](Self::next_inject) before
/// a `Simulation::step`; the workload consumes it during its tick and
/// records the packet↔job binding.
#[derive(Debug)]
pub struct ScriptCtl {
    /// The scripted jobs, in job-id order.
    pub jobs: Vec<JobSpec>,
    /// Which jobs have been generated.
    pub injected: Vec<bool>,
    /// Explorer's command for the next tick: generate this job.
    pub next_inject: Option<usize>,
    /// Live packet → canonical job id. Requests carry their job index;
    /// protocol responses carry `jobs.len() + job index`.
    pub pkt_job: BTreeMap<PacketId, u64>,
    /// Per-node protocol backlog (outstanding response obligations).
    pub backlog: Vec<u32>,
    /// Backlog at or above this refuses non-sink consumption (the
    /// protocol-deadlock ingredient). `None` disables the protocol model
    /// entirely: jobs are plain one-way traffic.
    pub backlog_limit: Option<u32>,
    /// Flit length of generated responses (protocol model only).
    pub response_len: u8,
    /// Total consumption events so far.
    pub consumed: u64,
    /// Consumption events expected for completion.
    pub expected: u64,
}

impl ScriptCtl {
    /// Creates the control block. With a backlog limit, every request is
    /// expected to produce and drain one response (two consumptions per
    /// job); without, jobs are one-way (one consumption per job).
    pub fn new(jobs: Vec<JobSpec>, nodes: usize, backlog_limit: Option<u32>) -> Self {
        let expected = jobs.len() as u64 * if backlog_limit.is_some() { 2 } else { 1 };
        let n = jobs.len();
        ScriptCtl {
            jobs,
            injected: vec![false; n],
            next_inject: None,
            pkt_job: BTreeMap::new(),
            backlog: vec![0; nodes],
            backlog_limit,
            response_len: 1,
            consumed: 0,
            expected,
        }
    }

    /// Job indices not yet generated, ascending.
    pub fn pending(&self) -> Vec<usize> {
        (0..self.jobs.len())
            .filter(|&j| !self.injected[j])
            .collect()
    }

    /// Whether every expected consumption has happened.
    pub fn done(&self) -> bool {
        self.consumed >= self.expected
    }

    /// Canonical job id of a live packet (requests: job index; responses:
    /// `jobs.len() + job index`).
    pub fn job_of(&self, pkt: PacketId) -> Option<u64> {
        self.pkt_job.get(&pkt).copied()
    }
}

/// Shared handle to a [`ScriptCtl`].
pub type CtlHandle = Arc<Mutex<ScriptCtl>>;

/// The adversary-driven workload (see module docs).
pub struct ScriptedWorkload {
    ctl: CtlHandle,
}

impl ScriptedWorkload {
    /// Creates the workload and the explorer's shared handle to it.
    pub fn new(jobs: Vec<JobSpec>, nodes: usize, backlog_limit: Option<u32>) -> (Self, CtlHandle) {
        let ctl = Arc::new(Mutex::new(ScriptCtl::new(jobs, nodes, backlog_limit)));
        (
            ScriptedWorkload {
                ctl: Arc::clone(&ctl),
            },
            ctl,
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ScriptCtl> {
        self.ctl.lock().expect("script control lock")
    }
}

impl Workload for ScriptedWorkload {
    fn tick(&mut self, core: &mut NetworkCore) {
        let mut ctl = self.lock();
        let Some(j) = ctl.next_inject.take() else {
            return;
        };
        assert!(!ctl.injected[j], "job {j} scheduled twice");
        ctl.injected[j] = true;
        let spec = ctl.jobs[j];
        let id = core.generate(Packet::new(
            NodeId::new(spec.src),
            NodeId::new(spec.dst),
            spec.class,
            spec.len,
            core.cycle(),
        ));
        ctl.pkt_job.insert(id, j as u64);
    }

    fn on_consumed(&mut self, core: &mut NetworkCore, pkt: &Packet) {
        let mut ctl = self.lock();
        ctl.consumed += 1;
        let job = ctl.pkt_job.remove(&pkt.id());
        if ctl.backlog_limit.is_none() {
            return;
        }
        if !pkt.class.is_sink() {
            // A request reached its home: the home now owes a response
            // and is (closer to) saturated until that response drains.
            ctl.backlog[pkt.dst.index()] += 1;
            let job = job.expect("scripted packets always carry a job id");
            let rid = core.generate(Packet::new(
                pkt.dst,
                pkt.src,
                MessageClass::Response,
                ctl.response_len,
                core.cycle(),
            ));
            let njobs = ctl.jobs.len() as u64;
            ctl.pkt_job.insert(rid, njobs + job);
        } else {
            // A response drained: its sender's obligation is settled.
            ctl.backlog[pkt.src.index()] -= 1;
        }
    }

    fn can_consume(&self, node: NodeId, class: MessageClass) -> bool {
        if class.is_sink() {
            return true;
        }
        let ctl = self.lock();
        match ctl.backlog_limit {
            Some(limit) => ctl.backlog[node.index()] < limit,
            None => true,
        }
    }

    fn finished(&self, _core: &NetworkCore) -> bool {
        self.lock().done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_and_done_track_script_progress() {
        let jobs = vec![JobSpec::req(0, 3), JobSpec::req(3, 0)];
        let mut ctl = ScriptCtl::new(jobs, 4, None);
        assert_eq!(ctl.pending(), vec![0, 1]);
        assert_eq!(ctl.expected, 2);
        ctl.injected[0] = true;
        assert_eq!(ctl.pending(), vec![1]);
        ctl.consumed = 2;
        assert!(ctl.done());
    }

    #[test]
    fn protocol_model_expects_responses() {
        let ctl = ScriptCtl::new(vec![JobSpec::req(0, 1)], 4, Some(1));
        assert_eq!(ctl.expected, 2, "request plus its response");
    }
}
