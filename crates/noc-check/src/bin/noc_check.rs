//! The `noc-check` CLI.
//!
//! ```text
//! noc-check [--matrix 2x2|3x3|all] [--config NAME]... [--planted]
//!           [--skip-static] [--out DIR]
//! ```
//!
//! Runs the selected verification matrices (default: `2x2` plus the
//! planted soundness check), writes `summary.json` and any wedge traces
//! under `--out` (default `target/noc-check`), prints one line per
//! config, and exits nonzero if any config's verdict differs from its
//! expectation, a replay fails to confirm, or a static lemma check
//! fails.

use noc_check::configs;
use noc_check::explore::{check, CheckConfig, Verdict};
use noc_check::replay::replay;
use noc_check::report::{ConfigOutcome, Summary};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    matrices: Vec<String>,
    configs: Vec<String>,
    planted: bool,
    skip_static: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrices: Vec::new(),
        configs: Vec::new(),
        planted: false,
        skip_static: false,
        out: PathBuf::from("target/noc-check"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--matrix" => {
                let m = it.next().ok_or("--matrix needs a value")?;
                match m.as_str() {
                    "2x2" | "3x3" => args.matrices.push(m),
                    "all" => {
                        args.matrices.push("2x2".into());
                        args.matrices.push("3x3".into());
                    }
                    other => return Err(format!("unknown matrix {other:?}")),
                }
            }
            "--config" => args
                .configs
                .push(it.next().ok_or("--config needs a value")?),
            "--planted" => args.planted = true,
            "--skip-static" => args.skip_static = true,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--help" | "-h" => {
                println!(
                    "usage: noc-check [--matrix 2x2|3x3|all] [--config NAME]... \
                     [--planted] [--skip-static] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.matrices.is_empty() && args.configs.is_empty() {
        args.matrices.push("2x2".into());
        args.planted = true;
    }
    Ok(args)
}

fn selected_configs(args: &Args) -> Result<Vec<CheckConfig>, String> {
    let mut v = Vec::new();
    for m in &args.matrices {
        match m.as_str() {
            "2x2" => v.extend(configs::matrix_2x2()),
            "3x3" => v.extend(configs::matrix_3x3()),
            _ => unreachable!("validated in parse_args"),
        }
    }
    for name in &args.configs {
        v.push(configs::by_name(name).ok_or_else(|| format!("no config named {name:?}"))?);
    }
    if args.planted {
        v.push(configs::planted());
    }
    Ok(v)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("noc-check: {e}");
            std::process::exit(2);
        }
    };
    let ccs = match selected_configs(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("noc-check: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("noc-check: cannot create {}: {e}", args.out.display());
        std::process::exit(2);
    }

    // Static lemma checks: TDM lane disjointness on both mesh tiers and
    // the irregular (disabled-link) smoke topology.
    let mut static_failures = Vec::new();
    if !args.skip_static {
        for (w, h) in [(2, 2), (3, 3), (4, 4)] {
            for f in configs::fastpass_static_lemma_failures(noc_core::topology::Mesh::new(w, h), 1)
            {
                static_failures.push(format!("{w}x{h}: {f}"));
            }
        }
        static_failures.extend(configs::irregular_static_failures());
        if static_failures.is_empty() {
            println!("static lemmas: TDM lanes disjoint on 2x2/3x3/4x4; irregular 4x4-minus-one-channel lanes cover and do not overlap");
        } else {
            for f in &static_failures {
                println!("static lemma FAILURE: {f}");
            }
        }
    }

    let mut outcomes = Vec::new();
    let mut ok = static_failures.is_empty();
    for cc in &ccs {
        if let Err(e) = configs::validate(cc) {
            eprintln!("noc-check: config {}: {e}", cc.name);
            std::process::exit(2);
        }
        let t0 = Instant::now();
        let report = check(cc);
        let seconds = t0.elapsed().as_secs_f64();

        let (replay_result, trace_path) = match &report.verdict {
            Verdict::Wedged(cex) => {
                let (r, trace) = replay(cc, cex);
                let path = args.out.join(format!("{}-wedge.trace.json", cc.name));
                if let Err(e) = std::fs::write(&path, trace) {
                    eprintln!("noc-check: cannot write {}: {e}", path.display());
                    std::process::exit(2);
                }
                (Some(r), Some(path.display().to_string()))
            }
            _ => (None, None),
        };

        let as_expected =
            report.as_expected(cc) && replay_result.as_ref().is_none_or(|r| r.confirmed);
        ok &= as_expected;
        let outcome = ConfigOutcome {
            report,
            as_expected,
            replay: replay_result,
            trace_path,
            seconds,
        };
        println!("{}", Summary::describe(&outcome));
        if let Some(r) = &outcome.replay {
            for m in &r.mismatches {
                println!("    replay mismatch: {m}");
            }
        }
        if !as_expected {
            println!(
                "    UNEXPECTED: config {} expected {}",
                outcome.report.name,
                if ccs
                    .iter()
                    .find(|c| c.name == outcome.report.name)
                    .is_some_and(|c| c.expect_wedge)
                {
                    "a wedge (planted bug) — checker failed its soundness test"
                } else {
                    "deadlock freedom"
                }
            );
        }
        outcomes.push(outcome);
    }

    let summary = Summary {
        version: env!("CARGO_PKG_VERSION"),
        matrices: args.matrices.clone(),
        static_failures,
        configs: outcomes,
        ok,
    };
    let path = args.out.join("summary.json");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("noc-check: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!(
        "summary: {} config(s), ok={} → {}",
        summary.configs.len(),
        summary.ok,
        path.display()
    );
    std::process::exit(if ok { 0 } else { 1 });
}
