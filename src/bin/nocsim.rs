//! `nocsim` — command-line front-end for the FastPass NoC simulator.
//!
//! Runs any scheme/pattern/size combination and prints a statistics
//! report, without writing any Rust:
//!
//! ```sh
//! nocsim --scheme fastpass --pattern transpose --rate 0.10 --size 8
//! nocsim --scheme escapevc --pattern uniform --rate 0.05 --cycles 50000
//! nocsim --scheme fastpass --app canneal --quota 50
//! nocsim --list
//! ```
//!
//! Arguments (all optional):
//!
//! * `--scheme <name>` — `fastpass` (default), `escapevc`, `spin`,
//!   `swap`, `drain`, `pitstop`, `minbd`, `tfc`, `vct-xy`;
//! * `--pattern <name>` — `uniform` (default), `transpose`, `shuffle`,
//!   `bit-rotation`, `bit-complement`, `tornado`, `neighbor`, `hotspot`;
//! * `--app <name>` — run a closed-loop application model instead of a
//!   synthetic pattern (`radix`, `canneal`, `fft`, `fmm`, `lu_cb`,
//!   `streamcluster`, `volrend`, `barnes`);
//! * `--rate <f64>` — injection rate in packets/node/cycle (default 0.05);
//! * `--size <n>` — mesh edge (default 8); `--vcs <n>` — FastPass VCs;
//! * `--warmup/--cycles <n>` — window lengths; `--quota <n>` — closed-loop
//!   transactions per core; `--seed <n>`; `--json` for machine output.

#![forbid(unsafe_code)]

use fastpass_noc::baselines::{
    drain::DrainConfig, pitstop::PitstopConfig, spin::SpinConfig, swap::SwapConfig, CreditVct,
    Drain, EscapeVc, MinBd, Pitstop, Spin, Swap, Tfc,
};
use fastpass_noc::core::config::SimConfig;
use fastpass_noc::core::stats::NetStats;
use fastpass_noc::fastpass::{FastPass, FastPassConfig};
use fastpass_noc::sim::{Scheme, Simulation, Workload};
use fastpass_noc::traffic::{AppModel, SyntheticPattern, SyntheticWorkload};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args(HashMap<String, String>);

impl Args {
    fn parse() -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("unexpected argument `{k}` (expected --key value)"));
            };
            if key == "list" || key == "json" || key == "help" {
                map.insert(key.to_string(), "true".to_string());
                continue;
            }
            let Some(v) = it.next() else {
                return Err(format!("missing value for --{key}"));
            };
            map.insert(key.to_string(), v);
        }
        Ok(Args(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} `{v}`")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

fn pattern_by_name(name: &str) -> Option<SyntheticPattern> {
    SyntheticPattern::ALL.into_iter().find(|p| p.name() == name)
}

fn app_by_name(name: &str) -> Option<AppModel> {
    [
        AppModel::Radix,
        AppModel::Canneal,
        AppModel::Fft,
        AppModel::Fmm,
        AppModel::LuCb,
        AppModel::Streamcluster,
        AppModel::Volrend,
        AppModel::Barnes,
    ]
    .into_iter()
    .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn scheme_by_name(name: &str, cfg: &SimConfig, seed: u64) -> Option<(Box<dyn Scheme>, usize)> {
    let nodes = cfg.mesh.num_nodes();
    Some(match name {
        "fastpass" => (
            Box::new(FastPass::new(cfg, FastPassConfig::default())) as Box<dyn Scheme>,
            0,
        ),
        "escapevc" => (Box::new(EscapeVc::new(seed)), 6),
        "spin" => (Box::new(Spin::new(seed, SpinConfig::default())), 6),
        "swap" => (Box::new(Swap::new(seed, SwapConfig::default())), 6),
        "drain" => (
            Box::new(Drain::new(
                cfg.mesh,
                seed,
                DrainConfig {
                    period: 8_000,
                    step_cycles: 5,
                },
            )),
            6,
        ),
        "pitstop" => (
            Box::new(Pitstop::new(nodes, seed, PitstopConfig::default())),
            0,
        ),
        "minbd" => (Box::new(MinBd::new(nodes, seed, Default::default())), 0),
        "tfc" => (Box::new(Tfc::new(seed)), 6),
        "vct-xy" => (Box::new(CreditVct::xy(6)), 6),
        _ => return None,
    })
}

fn print_listing() {
    println!("schemes : fastpass escapevc spin swap drain pitstop minbd tfc vct-xy");
    print!("patterns:");
    for p in SyntheticPattern::ALL {
        print!(" {}", p.name());
    }
    println!();
    println!("apps    : radix canneal fft fmm lu_cb streamcluster volrend barnes");
}

fn report(stats: &NetStats, cycles_run: u64, json: bool) {
    if json {
        println!(
            "{{\"delivered\":{},\"avg_latency\":{:.3},\"throughput\":{:.6},\
             \"fastpass_fraction\":{:.4},\"dropped\":{},\"rejections\":{},\
             \"deflections\":{},\"cycles\":{}}}",
            stats.delivered(),
            stats.avg_latency(),
            stats.throughput_packets(),
            stats.fastpass_fraction(),
            stats.dropped,
            stats.rejections,
            stats.deflections,
            cycles_run,
        );
        return;
    }
    println!("cycles simulated   : {cycles_run}");
    println!("packets delivered  : {}", stats.delivered());
    println!("avg latency        : {:.1} cycles", stats.avg_latency());
    println!(
        "throughput         : {:.4} packets/node/cycle ({:.4} flits/node/cycle)",
        stats.throughput_packets(),
        stats.throughput_flits()
    );
    println!(
        "avg hops           : {:.2}",
        stats.hops.mean().unwrap_or(f64::NAN)
    );
    println!(
        "FastPass-Packets   : {} ({:.1}%)",
        stats.delivered_fastpass,
        100.0 * stats.fastpass_fraction()
    );
    println!(
        "rejections/drops   : {} / {}",
        stats.rejections, stats.dropped
    );
    println!("misroutes          : {}", stats.deflections);
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;
    if args.flag("help") {
        println!(
            "see the module docs: nocsim --scheme <s> --pattern <p> --rate <r> [--size N] [--json]"
        );
        print_listing();
        return Ok(());
    }
    if args.flag("list") {
        print_listing();
        return Ok(());
    }
    let scheme_name = args.get("scheme").unwrap_or("fastpass").to_lowercase();
    let size: usize = args.num("size", 8)?;
    let vcs: usize = args.num("vcs", 4)?;
    let seed: u64 = args.num("seed", 0xCAFE)?;
    let warmup: u64 = args.num("warmup", 5_000)?;
    let cycles: u64 = args.num("cycles", 20_000)?;
    let rate: f64 = args.num("rate", 0.05)?;

    // Build the configuration first (scheme VN requirements differ).
    let probe = scheme_by_name(&scheme_name, &SimConfig::default(), seed)
        .ok_or_else(|| format!("unknown scheme `{scheme_name}` (try --list)"))?;
    let vns = probe.1;
    let cfg = SimConfig::builder()
        .mesh(size, size)
        .vns(vns)
        .vcs_per_vn(if vns == 0 { vcs } else { 2 })
        .seed(seed)
        .build();
    let (scheme, _) = scheme_by_name(&scheme_name, &cfg, seed).expect("validated above");

    let workload: Box<dyn Workload> = if let Some(app_name) = args.get("app") {
        let app = app_by_name(app_name)
            .ok_or_else(|| format!("unknown app `{app_name}` (try --list)"))?;
        let quota: u64 = args.num("quota", 0)?;
        Box::new(app.workload(cfg.mesh.num_nodes(), (quota > 0).then_some(quota)))
    } else {
        let pname = args.get("pattern").unwrap_or("uniform");
        let pattern = pattern_by_name(pname).ok_or_else(|| format!("unknown pattern `{pname}`"))?;
        Box::new(SyntheticWorkload::new(pattern, rate, seed ^ 0x5EED))
    };

    let mut sim = Simulation::new(cfg, scheme, workload);
    let stats = if args.get("app").is_some() && args.num::<u64>("quota", 0)? > 0 {
        // Closed loop: run to completion (bounded by --cycles as a cap
        // only if it is larger than the default).
        let cap = cycles.max(1_000_000);
        let ran = sim.run(cap);
        let mut s = sim.core.stats.clone();
        s.cycles = ran;
        s
    } else {
        sim.run_windows(warmup, cycles)
    };
    report(&stats, stats.cycles, args.flag("json"));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nocsim: {e}");
            ExitCode::FAILURE
        }
    }
}
