//! Facade crate for the FastPass NoC reproduction.
//!
//! Re-exports the public API of every workspace crate so that examples,
//! integration tests and downstream users need a single dependency:
//!
//! * [`core`] — topology, packets, configuration, statistics.
//! * [`sim`] — the cycle-accurate simulator substrate and engine.
//! * [`fastpass`] — the paper's contribution: TDM bufferless bypass lanes.
//! * [`baselines`] — EscapeVC, SPIN, SWAP, DRAIN, Pitstop, MinBD, TFC.
//! * [`traffic`] — synthetic patterns, protocol closed loop, app models.
//! * [`power`] — the analytical area/power model behind Fig. 11.
//! * [`trace`] — flit-level event tracing and per-router metrics.
//! * [`check`] — the bounded model checker over small configurations.
//! * [`prove`] — the static channel-dependency-graph deadlock certifier.
//! * [`serve`] — the persistent sweep service (`nocserve`/`nocctl`) over
//!   the content-addressed result store.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete, runnable walk-through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use fastpass;
pub use noc_check as check;
pub use noc_core as core;
pub use noc_power as power;
pub use noc_prove as prove;
pub use noc_serve as serve;
pub use noc_sim as sim;
pub use noc_trace as trace;
pub use traffic;
