//! Trace-transparency gate: tracing is observation, never behavior.
//!
//! Re-runs the `golden_stats` sweep (same schemes, rates, seed and
//! windows) at every [`TraceLevel`] and compares each point's fully
//! serialized [`NetStats`] hash against the *same* committed fixture,
//! `tests/golden/netstats.json`. A passing run proves that enabling
//! counters or full event recording produces bitwise identical simulated
//! behavior to an untraced run — the hooks only ever read simulator
//! state.
//!
//! The fixture is owned by `golden_stats.rs`; regenerate it there (and
//! only when simulated behavior intentionally changes).

use bench::runner::make_sim;
use bench::SchemeId;
use fastpass_noc::trace::{TraceConfig, TraceLevel};
use traffic::SyntheticPattern;

const MESH_SIZE: usize = 4;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 3_000;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/netstats.json");

/// FNV-1a 64-bit (matches `golden_stats.rs` and the bench cache).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, serde::Deserialize)]
struct GoldenPoint {
    scheme: String,
    rate: f64,
    netstats_fnv64: String,
}

fn golden() -> Vec<GoldenPoint> {
    let text = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/golden/netstats.json — regenerate via golden_stats.rs");
    serde_json::from_str(&text).expect("fixture parses")
}

fn trace_cfg(level: TraceLevel) -> TraceConfig {
    TraceConfig {
        level,
        ..TraceConfig::default()
    }
}

#[test]
fn netstats_identical_at_every_trace_level() {
    let golden = golden();
    for level in [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Full] {
        let mut idx = 0;
        for id in SCHEMES {
            for rate in RATES {
                let mut sim =
                    make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED);
                sim.set_trace(&trace_cfg(level));
                let stats = sim.run_windows(WARMUP, MEASURE);
                let json = serde_json::to_string(&stats).expect("NetStats serializes");
                let hash = format!("{:016x}", fnv1a64(json.as_bytes()));
                let want = &golden[idx];
                assert_eq!(want.scheme, id.name(), "fixture order drifted");
                assert_eq!(want.rate, rate, "fixture order drifted");
                assert_eq!(
                    hash,
                    want.netstats_fnv64,
                    "NetStats diverged from the golden fixture for {} @ rate {rate} \
                     at trace level {} — a trace hook changed simulated behavior",
                    id.name(),
                    level.name(),
                );
                idx += 1;
            }
        }
    }
}

#[test]
fn counters_and_events_actually_record() {
    // Transparency must not be vacuous: the traced runs above only prove
    // something if the tracer was really live. Repeat one point per
    // level and check the level's promised artifacts exist.
    let run = |level: TraceLevel| {
        let mut sim = make_sim(
            SchemeId::FastPass,
            SyntheticPattern::Uniform,
            0.08,
            MESH_SIZE,
            FP_VCS,
            SEED,
        );
        sim.set_trace(&trace_cfg(level));
        sim.run_windows(WARMUP, MEASURE);
        let t = sim.tracer();
        let injected: u64 = t
            .metrics()
            .iter()
            .map(|m| m.injected.iter().sum::<u64>())
            .sum();
        (injected, t.total_events())
    };
    let (inj_off, ev_off) = run(TraceLevel::Off);
    assert_eq!((inj_off, ev_off), (0, 0), "Off must record nothing");
    let (inj_cnt, ev_cnt) = run(TraceLevel::Counters);
    assert!(inj_cnt > 0, "Counters must populate RouterMetrics");
    assert_eq!(ev_cnt, 0, "Counters must not record events");
    let (inj_full, ev_full) = run(TraceLevel::Full);
    assert!(inj_full > 0 && ev_full > 0, "Full records both");
    assert_eq!(inj_full, inj_cnt, "counters agree across levels");
}
