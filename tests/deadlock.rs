//! Integration tests for the paper's correctness claims (§II, §III-D):
//! protocol- and network-level deadlocks are constructed for real, and
//! FastPass (0 VNs) resolves both; the broken configuration provably
//! wedges; the conventional fixes behave as advertised.

use fastpass_noc::baselines::{pitstop::PitstopConfig, spin::SpinConfig, CreditVct, Pitstop, Spin};
use fastpass_noc::core::config::SimConfig;
use fastpass_noc::fastpass::{FastPass, FastPassConfig, TdmSchedule};
use fastpass_noc::sim::{Simulation, Workload};
use fastpass_noc::traffic::protocol::{ProtocolConfig, ProtocolWorkload};

fn deadlock_prone_protocol(seed: u64) -> ProtocolWorkload {
    ProtocolWorkload::new(
        16,
        ProtocolConfig {
            mshrs: 12,
            issue_prob: 0.8,
            forward_fraction: 0.2,
            writeback_fraction: 0.2,
            locality: 0.0,
            quota: Some(15),
            home_backlog_limit: 2,
            seed,
        },
    )
}

fn tight_cfg(vns: usize) -> SimConfig {
    SimConfig::builder()
        .mesh(4, 4)
        .vns(vns)
        .vcs_per_vn(1)
        .ej_queue_packets(2)
        .inj_queue_packets(2)
        .seed(5)
        .build()
}

fn fp_fast() -> FastPassConfig {
    // 3× the minimum slot: short enough that full prime rotations happen
    // quickly in tests, long enough that the round-trip budget does not
    // confine far-destination launches to the first cycles of a slot.
    FastPassConfig {
        slot_cycles: Some(
            3 * TdmSchedule::min_slot_cycles(fastpass_noc::core::topology::Mesh::new(4, 4)),
        ),
        ..FastPassConfig::default()
    }
}

/// The broken configuration: shared buffers, no VNs, no resolution
/// mechanism. The coherence workload must wedge (protocol-level
/// deadlock), demonstrating the problem actually exists in this
/// substrate — otherwise the positive results below would be vacuous.
#[test]
fn zero_vn_plain_vct_wedges_on_protocol_traffic() {
    let mut sim = Simulation::new(
        tight_cfg(0),
        Box::new(CreditVct::xy(0)),
        Box::new(deadlock_prone_protocol(99)),
    );
    let ran = sim.run(60_000);
    assert_eq!(ran, 60_000, "must not complete");
    assert!(
        sim.starvation_cycles() > 30_000,
        "expected a wedge, got starvation of only {}",
        sim.starvation_cycles()
    );
    assert!(sim.in_flight() > 0, "packets are stuck inside");
}

/// The conventional fix: 6 VNs isolate the classes; everything completes.
#[test]
fn six_vns_complete_the_same_workload() {
    let mut sim = Simulation::new(
        tight_cfg(6),
        Box::new(CreditVct::xy(6)),
        Box::new(deadlock_prone_protocol(99)),
    );
    let ran = sim.run(60_000);
    assert!(ran < 60_000, "6-VN run should finish, ran {ran}");
    assert_eq!(sim.in_flight(), 0);
}

/// The paper's contribution: FastPass with the *same zero-VN buffers* as
/// the wedging configuration completes every transaction (Lemmas 1–4).
#[test]
fn fastpass_resolves_protocol_deadlock_with_zero_vns() {
    let cfg = tight_cfg(0);
    let scheme = FastPass::new(&cfg, fp_fast());
    let mut sim = Simulation::new(cfg, Box::new(scheme), Box::new(deadlock_prone_protocol(99)));
    let ran = sim.run(200_000);
    assert!(
        ran < 200_000,
        "FastPass must resolve the deadlock, ran {ran}"
    );
    assert_eq!(sim.in_flight(), 0, "everything drained");
}

/// Pitstop also completes at 0 VNs (Table I), though serialized by its
/// one-class-at-a-time pit lanes.
#[test]
fn pitstop_resolves_protocol_deadlock_with_zero_vns() {
    let cfg = tight_cfg(0);
    let scheme = Pitstop::new(16, 1, PitstopConfig::default());
    let mut sim = Simulation::new(cfg, Box::new(scheme), Box::new(deadlock_prone_protocol(99)));
    let ran = sim.run(300_000);
    assert!(
        ran < 300_000,
        "Pitstop must resolve the deadlock, ran {ran}"
    );
}

/// Network-level deadlock: fully-adaptive routing with one VC per VN and
/// saturating adversarial traffic creates cyclic buffer waits; SPIN's
/// probes + spins must keep the network live, and so must FastPass.
#[test]
fn adaptive_routing_deadlocks_are_resolved() {
    use fastpass_noc::traffic::{SyntheticPattern, SyntheticWorkload};
    // SPIN (6 VNs, adaptive).
    let cfg = SimConfig::builder()
        .mesh(4, 4)
        .vns(6)
        .vcs_per_vn(1)
        .seed(7)
        .build();
    let mut sim = Simulation::new(
        cfg,
        Box::new(Spin::new(3, SpinConfig::default())),
        Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.6, 4)),
    );
    sim.run(25_000);
    assert!(
        sim.starvation_cycles() < 3_000,
        "SPIN starved {}",
        sim.starvation_cycles()
    );
    // FastPass (0 VNs, adaptive).
    let cfg = SimConfig::builder()
        .mesh(4, 4)
        .vns(0)
        .vcs_per_vn(1)
        .seed(7)
        .build();
    let scheme = FastPass::new(&cfg, fp_fast());
    let mut sim = Simulation::new(
        cfg,
        Box::new(scheme),
        Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.6, 4)),
    );
    sim.run(25_000);
    assert!(
        sim.starvation_cycles() < 3_000,
        "FastPass starved {}",
        sim.starvation_cycles()
    );
}

/// A workload stalling one class's consumers entirely must not stop the
/// sink classes (Lemma 3's premise, enforced end to end).
#[test]
fn stalled_request_consumers_do_not_block_sinks() {
    use fastpass_noc::core::packet::MessageClass;
    use fastpass_noc::core::packet::Packet;
    use fastpass_noc::core::topology::NodeId;
    use fastpass_noc::sim::NetworkCore;

    struct StalledRequests;
    impl Workload for StalledRequests {
        fn tick(&mut self, core: &mut NetworkCore) {
            let cycle = core.cycle();
            if cycle < 400 && cycle.is_multiple_of(2) {
                for i in 0..8 {
                    let src = NodeId::new(i);
                    let dst = NodeId::new(15 - i);
                    core.generate(Packet::new(src, dst, MessageClass::Request, 1, cycle));
                    core.generate(Packet::new(dst, src, MessageClass::Response, 5, cycle));
                }
            }
        }
        fn can_consume(&self, _node: NodeId, class: MessageClass) -> bool {
            class.is_sink() // requests pile up forever
        }
    }

    let cfg = tight_cfg(0);
    let scheme = FastPass::new(&cfg, fp_fast());
    let mut sim = Simulation::new(cfg, Box::new(scheme), Box::new(StalledRequests));
    sim.run(40_000);
    let delivered = sim.core.stats.delivered();
    // 200 generation ticks × 8 responses each.
    assert!(
        delivered >= 1_550,
        "responses must be consumed despite stalled requests: {delivered}/1600"
    );
}

// ---------------------------------------------------------------------
// Model-checker-credited regressions (PR 7). The bounded checker in
// `noc-check` explores every injection/arbitration interleaving of a
// scripted job set on a 2×2 mesh; the tests below pin down what it
// found so the results cannot silently regress.
// ---------------------------------------------------------------------

/// The checker's soundness witness: the broken configuration of
/// `zero_vn_plain_vct_wedges_on_protocol_traffic` shrunk to 2×2 with a
/// scripted request pattern admits the same protocol wedge, the checker
/// must rediscover it, and replaying the counterexample schedule through
/// the full `Simulation` must reproduce the wedge bitwise (canonical
/// state hash, consumed count and in-flight population all equal).
#[test]
fn checker_rediscovers_planted_wedge_and_replay_confirms() {
    use fastpass_noc::check::{check, replay, Verdict, WedgeKind};

    let cc = fastpass_noc::check::configs::planted();
    let report = check(&cc);
    let cex = match &report.verdict {
        Verdict::Wedged(cex) => cex,
        other => panic!("planted config must wedge, got {other:?}"),
    };
    // The wedge is a protocol deadlock (consumer backlog chain through
    // the NIs), not a buffer-wait cycle, so the wait-graph diagnosis is
    // quiescence rather than a cycle.
    assert!(
        matches!(cex.kind, WedgeKind::Quiescent),
        "planted wedge is a protocol deadlock: {:?}",
        cex.kind
    );
    assert!(
        !cex.schedule.is_empty() && cex.consumed < cex.expected,
        "counterexample must leave work undone"
    );
    let (result, trace_json) = replay(&cc, cex);
    assert!(
        result.confirmed,
        "replay must reproduce the wedge bitwise: {:?}",
        result.mismatches
    );
    // Chrome trace-event JSON array form (Perfetto-loadable).
    assert!(
        trace_json.trim_start().starts_with('[') && trace_json.contains("\"ph\""),
        "replay emits a Perfetto-loadable trace"
    );
}

/// S1 triage of the prime suspects (`escape_vc` re-entry, `minbd`
/// deflection draw at minimal buffering): the checker explored their
/// full 2×2 interleaving space — zero truncated paths — without finding
/// a wedge or an invariant violation, so there is no counterexample to
/// fix at these bounds. This test keeps both verdicts exhaustive.
#[test]
fn checker_clears_escape_vc_and_minbd_exhaustively() {
    use fastpass_noc::check::{check, Verdict};

    for name in ["escape-vc-2x2", "minbd-min-2x2"] {
        let cc = fastpass_noc::check::configs::by_name(name)
            .unwrap_or_else(|| panic!("config {name} missing from matrix"));
        let report = check(&cc);
        assert!(
            matches!(report.verdict, Verdict::DeadlockFree),
            "{name}: expected deadlock-free, got {:?}",
            report.verdict
        );
        assert_eq!(
            report.truncated_paths, 0,
            "{name}: verdict must be exhaustive, not bounded"
        );
        assert!(!report.budget_exhausted, "{name}: budget must suffice");
    }
}
