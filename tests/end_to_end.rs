//! End-to-end integration: every scheme on every synthetic pattern and on
//! the protocol workload, checking delivery, conservation and
//! determinism through the full public API.

use fastpass_noc::baselines::{
    drain::DrainConfig, pitstop::PitstopConfig, spin::SpinConfig, swap::SwapConfig, Drain,
    EscapeVc, MinBd, Pitstop, Spin, Swap, Tfc,
};
use fastpass_noc::core::config::SimConfig;
use fastpass_noc::fastpass::{FastPass, FastPassConfig};
use fastpass_noc::sim::{Scheme, Simulation};
use fastpass_noc::traffic::{AppModel, SyntheticPattern, SyntheticWorkload};

fn all_schemes(cfg_vns6: &SimConfig, cfg_vns0: &SimConfig) -> Vec<(Box<dyn Scheme>, usize)> {
    let nodes = cfg_vns0.mesh.num_nodes();
    vec![
        (Box::new(EscapeVc::new(1)) as Box<dyn Scheme>, 6),
        (Box::new(Spin::new(1, SpinConfig::default())), 6),
        (Box::new(Swap::new(1, SwapConfig::default())), 6),
        (
            Box::new(Drain::new(
                cfg_vns6.mesh,
                1,
                DrainConfig {
                    period: 4_000,
                    step_cycles: 5,
                },
            )),
            6,
        ),
        (
            Box::new(Pitstop::new(nodes, 1, PitstopConfig::default())),
            0,
        ),
        (Box::new(MinBd::new(nodes, 1, Default::default())), 0),
        (Box::new(Tfc::new(1)), 6),
        (
            Box::new(FastPass::new(cfg_vns0, FastPassConfig::default())),
            0,
        ),
    ]
}

fn cfg(vns: usize) -> SimConfig {
    SimConfig::builder()
        .mesh(4, 4)
        .vns(vns)
        .vcs_per_vn(2)
        .seed(11)
        .build()
}

#[test]
fn every_scheme_delivers_every_pattern() {
    for pattern in [
        SyntheticPattern::Uniform,
        SyntheticPattern::Transpose,
        SyntheticPattern::Shuffle,
        SyntheticPattern::BitRotation,
        SyntheticPattern::BitComplement,
        SyntheticPattern::Tornado,
        SyntheticPattern::Neighbor,
    ] {
        let c6 = cfg(6);
        let c0 = cfg(0);
        for (scheme, vns) in all_schemes(&c6, &c0) {
            let name = scheme.name();
            let mut sim = Simulation::new(
                cfg(vns),
                scheme,
                Box::new(SyntheticWorkload::new(pattern, 0.05, 21)),
            );
            let stats = sim.run_windows(1_000, 3_000);
            assert!(
                stats.delivered() > 50,
                "{name} delivered only {} on {}",
                stats.delivered(),
                pattern.name()
            );
            assert!(
                sim.starvation_cycles() < 1_500,
                "{name} starving on {}",
                pattern.name()
            );
        }
    }
}

#[test]
fn every_scheme_completes_an_app_quota() {
    let c6 = cfg(6);
    let c0 = cfg(0);
    for (scheme, vns) in all_schemes(&c6, &c0) {
        let name = scheme.name();
        let wl = AppModel::Fft.workload(16, Some(8));
        let mut sim = Simulation::new(cfg(vns), scheme, Box::new(wl));
        let ran = sim.run(200_000);
        assert!(ran < 200_000, "{name} did not finish the quota");
        assert_eq!(sim.in_flight(), 0, "{name} left packets behind");
    }
}

#[test]
fn packet_conservation_under_load() {
    // Open-loop saturating traffic: generated = delivered + in flight,
    // for a scheme with drops (FastPass regenerates its drops, so the
    // identity must still hold).
    let c0 = cfg(0);
    let scheme = FastPass::new(&c0, FastPassConfig::default());
    let mut sim = Simulation::new(
        c0,
        Box::new(scheme),
        Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.5, 31)),
    );
    sim.run(15_000);
    let generated = sim.core.stats.generated;
    let consumed = sim.total_consumed();
    let in_flight = sim.in_flight() as u64;
    assert_eq!(
        generated,
        consumed + in_flight,
        "conservation: {generated} generated vs {consumed} consumed + {in_flight} in flight"
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let run = |seed: u64| {
        let c = SimConfig::builder()
            .mesh(4, 4)
            .vns(0)
            .vcs_per_vn(2)
            .seed(seed)
            .build();
        let scheme = FastPass::new(&c, FastPassConfig::default());
        let mut sim = Simulation::new(
            c,
            Box::new(scheme),
            Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.2, 5)),
        );
        let stats = sim.run_windows(2_000, 4_000);
        (
            stats.delivered(),
            stats.latency.mean(),
            stats.hops.mean(),
            stats.dropped,
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds explore different runs");
}

#[test]
fn sixteen_by_sixteen_smoke() {
    // The Fig. 8 large configuration boots and flows.
    let c = SimConfig::builder()
        .mesh(16, 16)
        .vns(0)
        .vcs_per_vn(4)
        .seed(2)
        .build();
    let scheme = FastPass::new(&c, FastPassConfig::default());
    let mut sim = Simulation::new(
        c,
        Box::new(scheme),
        Box::new(SyntheticWorkload::new(SyntheticPattern::Transpose, 0.05, 3)),
    );
    let stats = sim.run_windows(2_000, 3_000);
    assert!(stats.delivered() > 500);
}

#[test]
fn rectangular_mesh_supported() {
    let c = SimConfig::builder()
        .mesh(4, 8)
        .vns(0)
        .vcs_per_vn(2)
        .seed(2)
        .build();
    let scheme = FastPass::new(&c, FastPassConfig::default());
    let mut sim = Simulation::new(
        c,
        Box::new(scheme),
        Box::new(SyntheticWorkload::new(SyntheticPattern::Uniform, 0.05, 3)),
    );
    let stats = sim.run_windows(1_000, 3_000);
    assert!(stats.delivered() > 100);
}
