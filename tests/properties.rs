//! Property-based tests (proptest) of the reproduction's core
//! invariants: lane geometry, TDM schedule structure, collision freedom
//! under random traffic, conservation, and distribution math.

use fastpass_noc::core::config::SimConfig;
use fastpass_noc::core::stats::Distribution;
use fastpass_noc::core::topology::{Mesh, NodeId};
use fastpass_noc::fastpass::lane::{
    lane_footprint, outbound_path, path_links, return_path, verify_slot_disjoint,
};
use fastpass_noc::fastpass::{FastPass, FastPassConfig, TdmSchedule};
use fastpass_noc::sim::Simulation;
use fastpass_noc::traffic::{SyntheticPattern, SyntheticWorkload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Outbound and returning paths never share a directed link, for any
    /// prime/destination pair on any supported mesh.
    #[test]
    fn outbound_return_disjoint(
        w in 2usize..9,
        extra_h in 0usize..4,
        px in 0usize..8,
        py in 0usize..11,
        dx in 0usize..8,
        dy in 0usize..11,
    ) {
        let h = w + extra_h; // width <= height (FastPass requirement)
        let mesh = Mesh::new(w, h);
        let prime = mesh.node(px % w, py % h);
        let dst = mesh.node(dx % w, dy % h);
        prop_assume!(prime != dst);
        let out: std::collections::HashSet<_> =
            path_links(mesh, &outbound_path(mesh, prime, dst)).into_iter().collect();
        for l in path_links(mesh, &return_path(mesh, dst, prime)) {
            prop_assert!(!out.contains(&l), "shared link {l}");
        }
    }

    /// Every slot of every phase keeps all primes' full lane footprints
    /// pairwise disjoint — Fig. 4's property, for arbitrary mesh shapes.
    #[test]
    fn lanes_disjoint_any_mesh(w in 2usize..7, extra_h in 0usize..3, slot in 0u64..64) {
        let h = w + extra_h;
        let mesh = Mesh::new(w, h);
        let sched = TdmSchedule::new(mesh, 2);
        let cycle = slot * sched.slot_cycles();
        prop_assert!(verify_slot_disjoint(mesh, sched, cycle).is_ok());
    }

    /// A lane footprint touches only the prime's row and the covered
    /// column (the geometric invariant behind disjointness).
    #[test]
    fn footprint_geometry(w in 2usize..7, extra_h in 0usize..3, p in 0usize..7, q in 0usize..7, row in 0usize..9) {
        let h = w + extra_h;
        let mesh = Mesh::new(w, h);
        let prime = mesh.node(p % w, row % h);
        let covered = q % w;
        for link in lane_footprint(mesh, prime, covered) {
            let (from, dir) = mesh.link_endpoints(link);
            if dir.is_horizontal() {
                prop_assert_eq!(mesh.y(from), mesh.y(prime));
            } else {
                prop_assert_eq!(mesh.x(from), covered);
            }
        }
    }

    /// The schedule gives every router the prime role and every prime
    /// every partition, with concurrent primes never sharing rows or
    /// columns — Lemma 2's structural prerequisites.
    #[test]
    fn schedule_structure(w in 2usize..7, extra_h in 0usize..3) {
        let h = w + extra_h;
        let mesh = Mesh::new(w, h);
        let sched = TdmSchedule::new(mesh, 1);
        let mut primes_seen = std::collections::HashSet::new();
        for phase in 0..h as u64 {
            let mut rows = std::collections::HashSet::new();
            for p in 0..w {
                let prime = sched.prime(p, phase);
                prop_assert!(rows.insert(mesh.y(prime)));
                primes_seen.insert(prime);
            }
        }
        prop_assert_eq!(primes_seen.len(), mesh.num_nodes());
    }

    /// Random traffic at random load on random mesh sizes: the FastPass
    /// per-cycle collision assertion (inside the scheme) must never fire,
    /// packets are conserved, and nothing is lost.
    #[test]
    fn fastpass_random_traffic_invariants(
        w in 2usize..5,
        extra_h in 0usize..3,
        rate_pct in 1u32..60,
        seed in 0u64..1_000,
        vcs in 1usize..4,
    ) {
        let h = w + extra_h;
        let cfg = SimConfig::builder()
            .mesh(w, h)
            .vns(0)
            .vcs_per_vn(vcs)
            .seed(seed)
            .build();
        let scheme = FastPass::new(&cfg, FastPassConfig::default());
        let mut sim = Simulation::new(
            cfg,
            Box::new(scheme),
            Box::new(SyntheticWorkload::new(
                SyntheticPattern::Uniform,
                rate_pct as f64 / 100.0,
                seed ^ 0xABCD,
            )),
        );
        sim.run(3_000); // collision assert inside step() is the oracle
        let generated = sim.core.stats.generated;
        prop_assert_eq!(generated, sim.total_consumed() + sim.in_flight() as u64);
        // Deep structural audit: counters ordered, reservations chained,
        // queues reference live packets.
        let violations = fastpass_noc::sim::audit::audit(&sim.core);
        prop_assert!(violations.is_empty(), "audit failed: {:?}", violations);
    }

    /// Distribution percentiles are order statistics: p0 = min,
    /// p100 = max, monotone in p.
    #[test]
    fn distribution_percentiles(mut samples in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut d = Distribution::new();
        for &s in &samples {
            d.record(s);
        }
        samples.sort_unstable();
        prop_assert_eq!(d.percentile(0.0), Some(samples[0]));
        prop_assert_eq!(d.percentile(100.0), Some(*samples.last().unwrap()));
        let p50 = d.percentile(50.0).unwrap();
        let p90 = d.percentile(90.0).unwrap();
        let p99 = d.percentile(99.0).unwrap();
        prop_assert!(p50 <= p90 && p90 <= p99);
        let mean = d.mean().unwrap();
        prop_assert!(mean >= samples[0] as f64 && mean <= *samples.last().unwrap() as f64);
    }

    /// Merging two distributions is equivalent to recording the
    /// concatenation of their samples: same count, sum-backed mean, and
    /// every percentile.
    #[test]
    fn distribution_merge_equals_concatenation(
        a in proptest::collection::vec(0u64..10_000, 0..120),
        b in proptest::collection::vec(0u64..10_000, 0..120),
        p in 0u64..=100,
    ) {
        let mut left = Distribution::new();
        for &s in &a {
            left.record(s);
        }
        let mut right = Distribution::new();
        for &s in &b {
            right.record(s);
        }
        let mut concat = Distribution::new();
        for &s in a.iter().chain(&b) {
            concat.record(s);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), concat.count());
        prop_assert_eq!(left.mean(), concat.mean());
        prop_assert_eq!(left.percentile(p as f64), concat.percentile(p as f64));
        prop_assert_eq!(left.min(), concat.min());
        prop_assert_eq!(left.max(), concat.max());
    }

    /// Recording after a percentile query must invalidate the cached
    /// sort: subsequent percentiles reflect the new sample exactly as if
    /// all samples had been recorded up front.
    #[test]
    fn distribution_record_after_percentile_resorts(
        samples in proptest::collection::vec(0u64..10_000, 1..120),
        late in 0u64..10_000,
        p in 0u64..=100,
    ) {
        let mut d = Distribution::new();
        for &s in &samples {
            d.record(s);
        }
        // Force the internal sort, then append out of order.
        let _ = d.percentile(50.0);
        d.record(late);
        let mut fresh = Distribution::new();
        for &s in samples.iter().chain(std::iter::once(&late)) {
            fresh.record(s);
        }
        prop_assert_eq!(d.percentile(p as f64), fresh.percentile(p as f64));
        prop_assert_eq!(d.min(), fresh.min());
        prop_assert_eq!(d.max(), fresh.max());
        prop_assert_eq!(d.mean(), fresh.mean());
    }

    /// Serde round-trips preserve the distribution's statistics
    /// (mean, count, and percentiles), including the derived sum.
    #[test]
    fn distribution_serde_roundtrip(
        samples in proptest::collection::vec(0u64..10_000, 0..120),
        p in 0u64..=100,
    ) {
        let mut d = Distribution::new();
        for &s in &samples {
            d.record(s);
        }
        let json = serde_json::to_string(&d).expect("Distribution serializes");
        let mut back: Distribution = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back.count(), d.count());
        prop_assert_eq!(back.mean(), d.mean());
        prop_assert_eq!(back.percentile(p as f64), d.percentile(p as f64));
    }

    /// Synthetic patterns are self-inverse or permutations where claimed,
    /// and never map a node to itself when they return a destination.
    #[test]
    fn patterns_never_self(src_idx in 0usize..64, pattern_idx in 0usize..8, seed in 0u64..100) {
        let mesh = Mesh::new(8, 8);
        let pattern = SyntheticPattern::ALL[pattern_idx];
        let mut rng = fastpass_noc::core::rng::DetRng::new(seed);
        if let Some(d) = pattern.dest(mesh, NodeId::new(src_idx), &mut rng) {
            prop_assert_ne!(d, NodeId::new(src_idx));
            prop_assert!(d.index() < 64);
        }
    }
}

// ---------------------------------------------------------------------
// Wait-graph properties (PR 7): the cycle detector the deadlock schemes
// and the model checker both trust, cross-checked against independent
// oracles on random graphs, and SPIN's rotation checked against the
// conservation auditor.
// ---------------------------------------------------------------------

/// Brute-force transitive closure with path length ≥ 1
/// (Floyd–Warshall); the oracle the DFS cycle detector is tested
/// against.
fn reach_plus(n: usize, edges: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let mut r = vec![vec![false; n]; n];
    for (i, row) in edges.iter().enumerate() {
        for &j in row {
            r[i][j] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if r[i][k] && r[k][j] {
                    r[i][j] = true;
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `find_cycle_from` agrees with the reachability oracle on random
    /// adjacency structures: a cycle is reachable from `s` iff some
    /// vertex on a cycle is reachable from `s`. Any cycle returned must
    /// also be structurally genuine (consecutive edges exist, including
    /// the wrap) and actually reachable from the start vertex.
    #[test]
    fn wait_graph_cycles_match_reachability_oracle(
        rows in proptest::collection::vec(0u64..4096, 1..10),
    ) {
        use fastpass_noc::sim::waitgraph::WaitGraph;

        let n = rows.len();
        let edges: Vec<Vec<usize>> = rows
            .iter()
            .map(|&bits| (0..n).filter(|&j| bits >> j & 1 == 1).collect())
            .collect();
        let g = WaitGraph::from_edges(n, edges.clone());
        let r = reach_plus(n, &edges);
        let on_cycle: Vec<bool> = (0..n).map(|v| r[v][v]).collect();
        for s in 0..n {
            let found = g.find_cycle_from(s);
            let oracle = on_cycle[s] || (0..n).any(|v| r[s][v] && on_cycle[v]);
            prop_assert_eq!(found.is_some(), oracle);
            if let Some(cyc) = found {
                prop_assert!(!cyc.is_empty());
                for k in 0..cyc.len() {
                    let (a, b) = (cyc[k], cyc[(k + 1) % cyc.len()]);
                    prop_assert!(g.edges_of(a).contains(&b));
                }
                prop_assert!(cyc[0] == s || r[s][cyc[0]]);
            }
        }
        prop_assert_eq!(g.has_cycle(), (0..n).any(|v| on_cycle[v]));
    }

    /// SPIN's synchronized rotation never breaks packet conservation or
    /// the buffer-chaining invariants: starting from the canonical
    /// 4-packet ring deadlock on a 2×2 mesh, every rotation the wait
    /// graph justifies leaves both auditors clean and moves exactly the
    /// cycle's packets.
    #[test]
    fn rotate_cycle_preserves_conservation(seed in 0u64..64, rounds in 1usize..5) {
        use fastpass_noc::core::packet::{MessageClass, Packet};
        use fastpass_noc::core::topology::{Direction, Port};
        use fastpass_noc::sim::audit::{audit, audit_conservation};
        use fastpass_noc::sim::routing::FullyAdaptive;
        use fastpass_noc::sim::vc::VcOccupant;
        use fastpass_noc::sim::waitgraph::{rotate_cycle, WaitGraph};
        use fastpass_noc::sim::NetworkCore;

        let mut core = NetworkCore::new(
            SimConfig::builder().mesh(2, 2).vns(0).vcs_per_vn(1).build(),
        );
        // The canonical clockwise ring: each packet buffered on the input
        // the previous one wants. Install directly (no NI queues) so the
        // conservation audit sees exactly one residence per packet.
        let ring = [
            (0usize, Port::Dir(Direction::South), 2usize, 3usize),
            (1, Port::Dir(Direction::West), 0, 2),
            (3, Port::Dir(Direction::North), 1, 2),
            (2, Port::Dir(Direction::East), 3, 0),
        ];
        for &(node, port, src, dst) in &ring {
            let id = core.store.insert(Packet::new(
                NodeId::new(src),
                NodeId::new(dst),
                MessageClass::Request,
                1,
                0,
            ));
            let mut occ = VcOccupant::reserved(id, 1, 0);
            occ.arrived = 1;
            core.input_mut(NodeId::new(node), port.index()).install(0, occ);
        }
        let policy = FullyAdaptive::new(seed);
        prop_assert!(audit(&core).is_empty());
        prop_assert!(audit_conservation(&core, 0, 0).is_empty());
        for _ in 0..rounds {
            let g = WaitGraph::build(&core, &policy, 0);
            let Some(cyc) = (0..g.len()).find_map(|v| g.find_cycle_from(v)) else {
                break; // rotation resolved the ring — nothing left to spin
            };
            let moved = rotate_cycle(&mut core, &g, &cyc);
            prop_assert_eq!(moved.len(), cyc.len());
            prop_assert!(audit(&core).is_empty());
            prop_assert!(audit_conservation(&core, 0, 0).is_empty());
            prop_assert_eq!(core.store.live(), 4);
        }
    }
}
