//! Sampler-transparency gate: windowed telemetry is observation, never
//! behavior.
//!
//! Re-runs the `golden_stats` sweep (same schemes, rates, seed and
//! windows) with the windowed sampler off and at several sampling
//! granularities, and compares each point's fully serialized
//! [`NetStats`] hash against the *same* committed fixture the trace gate
//! uses, `tests/golden/netstats.json`. A passing run proves that
//! sampling — at any window size, including every cycle — produces
//! bitwise identical simulated behavior: the sampler only ever reads
//! simulator state at window boundaries.
//!
//! Two companion properties keep the gate honest:
//!
//! * **reconciliation** — the recorded windows must tile the measurement
//!   span exactly and their per-window deltas must sum to the end-of-run
//!   totals (packets, flits, stall cycles), so the series is an exact
//!   decomposition of the run, not an approximation of it;
//! * **determinism** — two identical runs must record identical window
//!   series, sample for sample.
//!
//! The fixture is owned by `golden_stats.rs`; regenerate it there (and
//! only when simulated behavior intentionally changes).

use bench::runner::make_sim;
use bench::SchemeId;
use fastpass_noc::sim::{SamplerConfig, Simulation, WindowSample};
use fastpass_noc::trace::TraceConfig;
use traffic::SyntheticPattern;

const MESH_SIZE: usize = 4;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 3_000;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/netstats.json");

/// FNV-1a 64-bit (matches `golden_stats.rs` and the bench cache).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, serde::Deserialize)]
struct GoldenPoint {
    scheme: String,
    rate: f64,
    netstats_fnv64: String,
}

fn golden() -> Vec<GoldenPoint> {
    let text = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/golden/netstats.json — regenerate via golden_stats.rs");
    serde_json::from_str(&text).expect("fixture parses")
}

fn point_sim(id: SchemeId, rate: f64) -> Simulation {
    make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED)
}

#[test]
fn netstats_identical_at_every_sampling_level() {
    let golden = golden();
    // `None` is the sampling-off control; the granularities cover one
    // window per cycle (maximum observation frequency), a typical size,
    // and a non-divisor prime that forces a partial flush window.
    for sample_every in [None, Some(1), Some(64), Some(997)] {
        let mut idx = 0;
        for id in SCHEMES {
            for rate in RATES {
                let mut sim = point_sim(id, rate);
                if let Some(every) = sample_every {
                    sim.set_sampler(&SamplerConfig {
                        sample_every: every,
                        max_windows: 4096,
                    });
                }
                let stats = sim.run_windows(WARMUP, MEASURE);
                sim.finish_sampling();
                let json = serde_json::to_string(&stats).expect("NetStats serializes");
                let hash = format!("{:016x}", fnv1a64(json.as_bytes()));
                let want = &golden[idx];
                assert_eq!(want.scheme, id.name(), "fixture order drifted");
                assert_eq!(want.rate, rate, "fixture order drifted");
                assert_eq!(
                    hash,
                    want.netstats_fnv64,
                    "NetStats diverged from the golden fixture for {} @ rate {rate} \
                     with sample_every={sample_every:?} — the sampler changed \
                     simulated behavior",
                    id.name(),
                );
                idx += 1;
            }
        }
    }
}

#[test]
fn window_sums_reconcile_with_run_totals() {
    // Stall counters flow through the tracer, so this point runs with
    // counters live; the trace gate separately proves counters are
    // behavior-transparent.
    let mut sim = point_sim(SchemeId::FastPass, 0.08);
    sim.set_trace(&TraceConfig::counters());
    sim.set_sampler(&SamplerConfig {
        sample_every: 128, // non-divisor of 3000: forces a partial flush
        max_windows: 4096,
    });
    let stats = sim.run_windows(WARMUP, MEASURE);
    sim.finish_sampling();
    let windows = sim.sampler().expect("sampler installed").windows();

    // The series tiles [reset, end] with no gaps or overlaps.
    assert_eq!(windows.first().expect("windows").start_cycle, WARMUP);
    assert_eq!(windows.last().expect("windows").end_cycle, WARMUP + MEASURE);
    for pair in windows.windows(2) {
        assert_eq!(pair[0].end_cycle, pair[1].start_cycle, "gap in series");
    }

    // Monotone-counter deltas sum back to the end-of-run totals.
    let sum = |f: fn(&WindowSample) -> u64| windows.iter().map(f).sum::<u64>();
    assert_eq!(sum(|w| w.delivered), stats.delivered());
    assert_eq!(sum(|w| w.flits_delivered), stats.flits_delivered);
    assert_eq!(sum(|w| w.generated), stats.generated);
    assert_eq!(sum(|w| w.latency_count), stats.latency.count() as u64);

    // Stall cycles: a single whole-measurement window must equal the sum
    // of the fine-grained windows (both are deltas over the same span).
    let mut coarse = point_sim(SchemeId::FastPass, 0.08);
    coarse.set_trace(&TraceConfig::counters());
    coarse.set_sampler(&SamplerConfig {
        sample_every: MEASURE,
        max_windows: 4,
    });
    coarse.run_windows(WARMUP, MEASURE);
    coarse.finish_sampling();
    let coarse_windows = coarse.sampler().expect("sampler").windows();
    assert_eq!(coarse_windows.len(), 1, "one window spans the measurement");
    let one = &coarse_windows[0];
    assert_eq!(sum(|w| w.total_stalls()), one.total_stalls());
    assert!(one.total_stalls() > 0, "rate 0.08 must stall somewhere");
    assert_eq!(sum(|w| w.link_flits_regular), one.link_flits_regular);
    assert_eq!(sum(|w| w.delivered), one.delivered);
}

#[test]
fn window_series_is_deterministic_across_runs() {
    let run = || {
        let mut sim = point_sim(SchemeId::FastPass, 0.05);
        sim.set_sampler(&SamplerConfig {
            sample_every: 64,
            max_windows: 4096,
        });
        sim.run_windows(WARMUP, MEASURE);
        sim.finish_sampling();
        sim.sampler().expect("sampler").windows().to_vec()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "identical runs must record identical series");
}
