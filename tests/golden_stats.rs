//! Golden-stats determinism gate for the regular-pass hot path.
//!
//! Runs a fixed-seed low-load sweep (FastPass + plain VCT, three rates)
//! and compares the FNV-1a hash of each point's fully serialized
//! [`NetStats`] JSON against committed fixtures. The fixtures were
//! generated *before* the active-set/allocation-free rewrite of the
//! cycle loop, so a passing run proves the optimisation is bitwise
//! behavior-preserving — not merely "statistically similar".
//!
//! Regenerate (only when simulated behavior is *intentionally* changed):
//!
//! ```text
//! FP_GOLDEN_REGEN=1 cargo test --test golden_stats
//! ```
//!
//! and commit the updated `tests/golden/netstats.json` together with an
//! explanation of why the simulated behavior changed.

use bench::runner::make_sim;
use bench::SchemeId;
use traffic::SyntheticPattern;

const MESH_SIZE: usize = 4;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 3_000;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/netstats.json");

/// FNV-1a 64-bit (matches the bench cache's stable hash).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, serde::Serialize, serde::Deserialize, PartialEq)]
struct GoldenPoint {
    scheme: String,
    rate: f64,
    /// FNV-1a 64 over the serde_json serialization of the full NetStats
    /// (every distribution sample included), as a hex string.
    netstats_fnv64: String,
    delivered: u64,
    generated: u64,
    cycles: u64,
}

fn run_points() -> Vec<GoldenPoint> {
    let mut out = Vec::new();
    for id in SCHEMES {
        for rate in RATES {
            let mut sim = make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED);
            let stats = sim.run_windows(WARMUP, MEASURE);
            let json = serde_json::to_string(&stats).expect("NetStats serializes");
            out.push(GoldenPoint {
                scheme: id.name().to_string(),
                rate,
                netstats_fnv64: format!("{:016x}", fnv1a64(json.as_bytes())),
                delivered: stats.delivered(),
                generated: stats.generated,
                cycles: stats.cycles,
            });
        }
    }
    out
}

#[test]
fn netstats_bitwise_identical_to_golden_fixture() {
    let points = run_points();
    if std::env::var("FP_GOLDEN_REGEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        let json = serde_json::to_string_pretty(&points).unwrap();
        std::fs::write(FIXTURE, json + "\n").expect("write fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let text = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/golden/netstats.json — run with FP_GOLDEN_REGEN=1 once");
    let golden: Vec<GoldenPoint> = serde_json::from_str(&text).expect("fixture parses");
    assert_eq!(
        points.len(),
        golden.len(),
        "point count drifted from fixture"
    );
    for (got, want) in points.iter().zip(&golden) {
        assert_eq!(
            got, want,
            "NetStats diverged from golden fixture for {} @ rate {} — \
             the hot path changed simulated behavior",
            want.scheme, want.rate
        );
    }
}
