//! Big-mesh golden gate for the batched executor.
//!
//! Runs 16×16-mesh sweep points through
//! [`noc_sim::batch::run_windows_batched`] — all points interleaved in
//! one hot loop — and compares the FNV-1a hash of each point's fully
//! serialized [`NetStats`](noc_core::stats::NetStats) JSON against the
//! committed `tests/golden/netstats_16x16.json` fixture. A passing run
//! proves two things at once: the simulator's behavior at 256 nodes is
//! bitwise reproducible across commits, and batched interleaving does
//! not perturb any point's results.
//!
//! Two scopes share the one fixture:
//!
//! * default (per-PR CI): the smoke subset — both schemes at the lowest
//!   rate only — keeping the gate a few seconds even in debug builds;
//! * `FP_BIG_MESH_FULL=1` (weekly CI sweep): every scheme × rate point
//!   in the fixture.
//!
//! Regenerate (only when simulated behavior is *intentionally*
//! changed) with the full scope:
//!
//! ```text
//! FP_GOLDEN_REGEN=1 cargo test --release --test big_mesh_golden
//! ```
//!
//! and commit the updated fixture together with an explanation of why
//! the simulated behavior changed. Regeneration always covers the full
//! point set regardless of `FP_BIG_MESH_FULL`.

use bench::runner::make_sim;
use bench::SchemeId;
use noc_sim::batch::run_windows_batched;
use noc_sim::Simulation;
use traffic::SyntheticPattern;

const MESH_SIZE: usize = 16;
const FP_VCS: usize = 2;
const SEED: u64 = 5;
const WARMUP: u64 = 500;
const MEASURE: u64 = 1_500;
const RATES: [f64; 3] = [0.02, 0.05, 0.08];
const SCHEMES: [SchemeId; 2] = [SchemeId::FastPass, SchemeId::Vct];

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/netstats_16x16.json"
);

/// FNV-1a 64-bit (matches `golden_stats` and the bench cache's hash).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, serde::Serialize, serde::Deserialize, PartialEq)]
struct GoldenPoint {
    scheme: String,
    rate: f64,
    netstats_fnv64: String,
    delivered: u64,
    generated: u64,
    cycles: u64,
}

fn full_matrix() -> Vec<(SchemeId, f64)> {
    SCHEMES
        .iter()
        .flat_map(|&id| RATES.iter().map(move |&r| (id, r)))
        .collect()
}

fn smoke_matrix() -> Vec<(SchemeId, f64)> {
    SCHEMES.iter().map(|&id| (id, RATES[0])).collect()
}

/// Runs `points` as one batch and returns their golden records in
/// input order.
fn run_batched(points: &[(SchemeId, f64)]) -> Vec<GoldenPoint> {
    let mut sims: Vec<Simulation> = points
        .iter()
        .map(|&(id, rate)| make_sim(id, SyntheticPattern::Uniform, rate, MESH_SIZE, FP_VCS, SEED))
        .collect();
    let all = run_windows_batched(&mut sims, WARMUP, MEASURE);
    points
        .iter()
        .zip(&all)
        .map(|(&(id, rate), stats)| {
            let json = serde_json::to_string(stats).expect("NetStats serializes");
            GoldenPoint {
                scheme: id.name().to_string(),
                rate,
                netstats_fnv64: format!("{:016x}", fnv1a64(json.as_bytes())),
                delivered: stats.delivered(),
                generated: stats.generated,
                cycles: stats.cycles,
            }
        })
        .collect()
}

fn env_on(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn big_mesh_batched_matches_golden_fixture() {
    if env_on("FP_GOLDEN_REGEN") {
        let points = run_batched(&full_matrix());
        let json = serde_json::to_string_pretty(&points).unwrap();
        std::fs::write(FIXTURE, json + "\n").expect("write fixture");
        eprintln!("regenerated {FIXTURE}");
        return;
    }
    let matrix = if env_on("FP_BIG_MESH_FULL") {
        full_matrix()
    } else {
        smoke_matrix()
    };
    let points = run_batched(&matrix);
    let text = std::fs::read_to_string(FIXTURE)
        .expect("missing tests/golden/netstats_16x16.json — run with FP_GOLDEN_REGEN=1 once");
    let golden: Vec<GoldenPoint> = serde_json::from_str(&text).expect("fixture parses");
    for got in &points {
        let want = golden
            .iter()
            .find(|g| g.scheme == got.scheme && g.rate == got.rate)
            .unwrap_or_else(|| {
                panic!(
                    "fixture has no point for {} @ rate {} — regenerate it",
                    got.scheme, got.rate
                )
            });
        assert_eq!(
            got, want,
            "16x16 batched NetStats diverged from golden fixture for {} @ rate {}",
            want.scheme, want.rate
        );
    }
}
