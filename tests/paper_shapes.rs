//! Qualitative "shape" assertions from the paper's evaluation, with
//! generous margins so they are robust to substrate details. These are
//! the regression net for EXPERIMENTS.md: if one of these fails, a
//! reported reproduction claim has silently changed.

use bench::{runner::make_sim, SchemeId};
use fastpass_noc::power::{router_area, router_power, RouterParams, SchemeKind};
use fastpass_noc::sim::Simulation;
use traffic::{AppModel, SyntheticPattern};

fn latency_at(id: SchemeId, rate: f64) -> f64 {
    let mut sim = make_sim(id, SyntheticPattern::Transpose, rate, 8, 4, 77);
    sim.run_windows(3_000, 8_000).avg_latency()
}

/// Pre-saturation latency: FastPass is the best or tied-best scheme
/// (the paper's "46% average packet latency improvement" direction).
#[test]
fn fastpass_lowest_presaturation_latency() {
    let fp = latency_at(SchemeId::FastPass, 0.08);
    for other in [SchemeId::EscapeVc, SchemeId::Tfc, SchemeId::Drain] {
        let l = latency_at(other, 0.08);
        assert!(
            fp <= l * 1.05,
            "FastPass {fp:.1} should beat {} ({l:.1}) before saturation",
            other.name()
        );
    }
}

/// TFC's west-first restriction hurts badly on transpose (Fig. 7: TFC
/// saturates first together with SPIN).
#[test]
fn tfc_saturates_early_on_transpose() {
    let tfc = latency_at(SchemeId::Tfc, 0.08);
    let fp = latency_at(SchemeId::FastPass, 0.08);
    assert!(
        tfc > 2.0 * fp,
        "TFC ({tfc:.1}) should be deep in trouble where FastPass ({fp:.1}) is fine"
    );
}

/// Misrouting: MinBD deflects under load; FastPass never does (Table I).
#[test]
fn misrouting_profile() {
    let mut sim = make_sim(SchemeId::MinBd, SyntheticPattern::Transpose, 0.15, 4, 1, 7);
    let stats = sim.run_windows(2_000, 6_000);
    assert!(stats.deflections > 0, "MinBD must deflect under load");

    let mut sim = make_sim(
        SchemeId::FastPass,
        SyntheticPattern::Transpose,
        0.3,
        4,
        4,
        7,
    );
    let stats = sim.run_windows(2_000, 6_000);
    assert_eq!(stats.deflections, 0, "FastPass never misroutes");
}

/// Fig. 9's shape: the bufferless component of FastPass-Packet latency
/// stays small — below the network diameter plus serialization — even
/// past saturation, because flights progress every cycle.
#[test]
fn fastpass_bufferless_time_stays_small() {
    for rate in [0.05, 0.25] {
        let mut sim = make_sim(SchemeId::FastPass, SyntheticPattern::Uniform, rate, 8, 1, 3);
        let stats = sim.run_windows(3_000, 8_000);
        if stats.delivered_fastpass == 0 {
            continue; // low load may upgrade nothing
        }
        let bufferless = stats.fastpass_bufferless.mean().unwrap();
        // Worst case: round trip (2×14) + 2×5 flits + slack.
        assert!(
            bufferless <= 48.0,
            "bufferless time {bufferless:.1} at rate {rate} exceeds a round trip"
        );
    }
}

/// Fig. 13's headline: dropped packets stay a small fraction even past
/// saturation (paper: ≤5.9%; SCARAB drops up to 9%).
#[test]
fn drops_stay_rare_past_saturation() {
    let mut sim = make_sim(SchemeId::FastPass, SyntheticPattern::Uniform, 0.3, 4, 1, 3);
    let stats = sim.run_windows(2_000, 8_000);
    assert!(
        stats.dropped_fraction() < 0.10,
        "drop fraction {:.3} exceeds the paper's ceiling",
        stats.dropped_fraction()
    );
}

/// Fig. 12's extremes: DRAIN's wholesale misrouting gives it a worse
/// tail than FastPass on application traffic. Compared below saturation
/// — a light app on a 4×4 mesh — so the tails reflect each mechanism
/// (drain epochs vs. lanes), not raw buffer-budget congestion.
#[test]
fn drain_tail_worse_than_fastpass() {
    let p99 = |id: SchemeId| {
        let cfg = id.sim_config(4, 2, 9);
        let scheme = id.build(&cfg, 9);
        let wl = AppModel::Volrend.workload(16, None);
        let mut sim = Simulation::new(cfg, scheme, Box::new(wl));
        let mut stats = sim.run_windows(4_000, 12_000);
        stats.latency.percentile(99.0).unwrap_or(0)
    };
    let drain = p99(SchemeId::Drain);
    let fp = p99(SchemeId::FastPass);
    assert!(
        drain > fp,
        "DRAIN p99 ({drain}) should exceed FastPass p99 ({fp})"
    );
}

/// Fig. 11's headline claims, through the public power API.
#[test]
fn power_area_claims() {
    let vn6 = RouterParams::default();
    let vn0 = RouterParams {
        vns: 0,
        vcs_per_vn: 2,
        ..RouterParams::default()
    };
    let escape_a = router_area(SchemeKind::EscapeVc, &vn6).total();
    let fp_a = router_area(SchemeKind::FastPass, &vn0).total();
    let reduction = 1.0 - fp_a / escape_a;
    assert!(
        reduction >= 0.35,
        "area reduction {reduction:.2} below the paper's ~0.40 claim"
    );
    let escape_p = router_power(SchemeKind::EscapeVc, &vn6).total();
    let fp_p = router_power(SchemeKind::FastPass, &vn0).total();
    assert!(1.0 - fp_p / escape_p >= 0.35);
    // Pitstop ≈ FastPass.
    let pit_a = router_area(SchemeKind::Pitstop, &vn0).total();
    assert!((fp_a - pit_a).abs() / fp_a < 0.10);
}

/// Low load is regular-dominated; load raises the FastPass-Packet share
/// (Fig. 13a's trend, §Qn1).
#[test]
fn fastflow_kicks_in_with_load() {
    let frac = |rate: f64| {
        let mut sim = make_sim(SchemeId::FastPass, SyntheticPattern::Uniform, rate, 4, 1, 5);
        sim.run_windows(2_000, 6_000).fastpass_fraction()
    };
    let low = frac(0.02);
    let high = frac(0.30);
    assert!(
        high > low,
        "FastPass share must grow with load: {low:.3} -> {high:.3}"
    );
    assert!(low < 0.5, "low load must stay regular-dominated ({low:.3})");
}
