//! Offline stand-in for `serde_derive`.
//!
//! Derives the serde shim's [`Serialize`]/[`Deserialize`] traits by
//! parsing the item's token stream directly (the build environment has
//! no registry access, so `syn`/`quote` are unavailable). Supports the
//! shapes this workspace uses:
//!
//! * structs with named fields → JSON objects;
//! * newtype structs (`struct NodeId(u16)`) → their inner value;
//! * tuple structs → arrays;
//! * enums with unit variants → variant-name strings;
//! * enums with newtype variants (`Port::Dir(Direction)`) →
//!   single-key objects.
//!
//! Generics, struct variants and `#[serde(...)]` attributes are
//! unsupported and rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive target.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// Number of payload fields: 0 = unit, 1 = newtype.
    arity: usize,
}

/// Derives the serde shim's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct { arity: 1, .. } => {
            "::serde::Serialize::to_content(&self.0)".to_string()
        }
        Shape::TupleStruct { arity, .. } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct { .. } => "::serde::Content::Null".to_string(),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v.arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Content::Str(\"{v}\".to_string())",
                        v = v.name
                    ),
                    1 => format!(
                        "{name}::{v}(inner) => ::serde::Content::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_content(inner))])",
                        v = v.name
                    ),
                    n => panic!("variant {}::{} has {n} fields; only unit and newtype variants are supported", name, v.name),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let name = shape_name(&shape);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the serde shim's `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let name = shape_name(&shape).to_string();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(::serde::field(map, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let map = c.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected map for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1, .. } => {
            format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::TupleStruct { arity, .. } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = c.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected sequence for {name}\"))?;\n\
                 if seq.len() != {arity} {{\n\
                 return Err(::serde::DeError::custom(\"wrong arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { .. } => format!("Ok({name})"),
        Shape::Enum { variants, .. } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| format!("\"{v}\" => return Ok({name}::{v})", v = v.name))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity == 1)
                .map(|v| {
                    format!(
                        "if key == \"{v}\" {{\n\
                         return Ok({name}::{v}(::serde::Deserialize::from_content(value)?));\n\
                         }}",
                        v = v.name
                    )
                })
                .collect();
            format!(
                "if let ::serde::Content::Str(s) = c {{\n\
                 match s.as_str() {{ {unit} _ => {{}} }}\n\
                 }}\n\
                 if let Some([(key, value)]) = c.as_map() {{\n\
                 {newtype}\n\
                 let _ = value;\n\
                 }}\n\
                 Err(::serde::DeError::custom(format!(\
                 \"no variant of {name} matches {{c:?}}\")))",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                newtype = newtype_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn shape_name(shape: &Shape) -> &str {
    match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    }
}

/// Parses the derive input into a [`Shape`], panicking (compile error)
/// on unsupported constructs.
fn parse_shape(input: TokenStream) -> Shape {
    let mut toks = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the serde shim derive does not support generic types ({name})");
    }
    match (kind.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                name,
                arity: count_top_level_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct { name },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Shape::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (k, other) => panic!("unsupported {k} shape for {name}: {other:?}"),
    }
}

fn skip_attributes_and_visibility(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-field body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut toks);
        let Some(TokenTree::Ident(field)) = toks.next() else {
            break;
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, got {other:?}"),
        }
        // Skip the type up to the next comma outside angle brackets
        // (token trees keep (), [] and {} grouped, but not <>).
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts comma-separated fields at the top level of a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

/// Parses enum variants (unit or newtype; discriminants are skipped).
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attributes_and_visibility(&mut toks);
        let Some(TokenTree::Ident(vname)) = toks.next() else {
            break;
        };
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = toks.peek() {
            if g.delimiter() == Delimiter::Parenthesis {
                arity = count_top_level_fields(g.stream());
                toks.next();
            } else if g.delimiter() == Delimiter::Brace {
                panic!("struct variant {vname} is not supported by the serde shim derive");
            }
        }
        // Skip a `= discriminant` and the trailing comma.
        for t in toks.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant {
            name: vname.to_string(),
            arity,
        });
    }
    variants
}
