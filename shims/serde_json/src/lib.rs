//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the serde shim's [`Content`] tree as JSON. Output
//! conventions match real `serde_json`: objects keep field order,
//! pretty-printing indents by two spaces, and non-finite floats
//! serialize as `null` (JSON has no NaN/∞). Parsing accepts the full
//! JSON grammar produced by either serializer.

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the content model, but kept fallible to match the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the content model, but kept fallible to match the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a structural mismatch with
/// `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(c: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U128(v) => out.push_str(&v.to_string()),
        Content::I128(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Debug formatting is shortest-round-trip and always
                // keeps a decimal point or exponent (`1.0`, not `1`).
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_content(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::new(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u128>() {
                return Ok(Content::U128(v));
            }
            if let Ok(v) = text.parse::<i128>() {
                return Ok(Content::I128(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2,\n  3\n]");
        assert_eq!(from_str::<Vec<u64>>("[1,2,3]").unwrap(), v);
        assert_eq!(from_str::<Vec<u64>>("[\n  1,\n  2,\n  3\n]").unwrap(), v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.015f64).unwrap(), "0.015");
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn big_u64_survives() {
        let v = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&v).unwrap()).unwrap(), v);
    }
}
