//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the small slice of `rand`'s 0.8 API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand 0.8` uses for `SmallRng` on 64-bit targets —
//! so statistical quality and determinism guarantees carry over. Streams
//! are *not* guaranteed to be value-identical to upstream `rand`; the
//! repository only relies on determinism for a fixed seed, which holds.

/// A source of random `u64`s (the core sampling primitive).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait SampleUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl SampleUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleUniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as upstream rand does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Debiased multiply-shift (Lemire); span never exceeds
                // 2^64 so one u64 draw suffices.
                let zone = u64::MAX - (u64::MAX % span as u64 + 1) % span as u64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span as u64) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample(rng);
                }
                SampleRange::<$t>::sample_from(lo..hi + 1, rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s full domain (`[0, 1)` for floats).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        // Compare against 53-bit fixed point so p == 1.0 is always true.
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds xoshiro.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.gen::<u64>() != b.gen::<u64>()));
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = SmallRng::seed_from_u64(11);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
