//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the serialization surface it uses: the [`Serialize`] /
//! [`Deserialize`] traits and their derive macros (re-exported from the
//! sibling `serde_derive` shim when the `derive` feature is on).
//!
//! Unlike real serde's visitor architecture, this shim round-trips
//! values through a self-describing [`Content`] tree; `serde_json` (the
//! sibling shim) renders and parses that tree. The JSON data model
//! matches real serde's conventions so files written by earlier builds
//! remain readable: structs are objects, newtype structs are their inner
//! value, unit enum variants are strings, newtype variants are
//! single-key objects, sequences are arrays, and non-finite floats
//! serialize as `null`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::collections::HashMap;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (covers u128 so `Distribution::sum` round-trips).
    U128(u128),
    /// Signed integer.
    I128(i128),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with ordered keys (struct fields in declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The fields of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (accepts integral
    /// floats, matching the numeric coercions of the typed impls).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U128(v) => u64::try_from(v).ok(),
            Content::I128(v) => u64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => Some(v as u64),
            _ => None,
        }
    }
}

// Identity impls: `Content` is its own serialized form, so generic
// consumers (schema validators, pretty-printers) can parse arbitrary
// JSON via `serde_json::from_str::<Content>` without a typed schema.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from anything displayable.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a struct field in a serialized map.
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn field<'a>(map: &'a [(String, Content)], name: &str) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// A type that can render itself into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn to_content(&self) -> Content;
}

/// A type that can rebuild itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first structural mismatch.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U128(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let err = || DeError(format!(
                    "expected {}, got {c:?}", stringify!($t)
                ));
                match *c {
                    Content::U128(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::I128(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I128(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let err = || DeError(format!(
                    "expected {}, got {c:?}", stringify!($t)
                ));
                match *c {
                    Content::I128(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::U128(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::U128(v) => Ok(v as f64),
            Content::I128(v) => Ok(v as f64),
            // Real serde_json writes non-finite floats as null; map the
            // reverse direction onto NaN so such points round-trip.
            Content::Null => Ok(f64::NAN),
            _ => Err(DeError(format!("expected f64, got {c:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::Bool(b) => Ok(b),
            _ => Err(DeError(format!("expected bool, got {c:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, got {c:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError(format!("expected single-char string, got {c:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(DeError(format!("expected 2-element sequence, got {c:?}"))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_content()), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Sort keys so serialization is deterministic regardless of
        // hasher state — required for byte-identical parallel output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_content()), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

fn key_string(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        Content::U128(v) => v.to_string(),
        Content::I128(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()), Ok(42));
        assert_eq!(i64::from_content(&(-7i64).to_content()), Ok(-7));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn nan_round_trips_via_null() {
        // Serialization of NaN is the json layer's business (null); the
        // reverse direction is ours.
        assert!(f64::from_content(&Content::Null).unwrap().is_nan());
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()), Ok(v));
        assert_eq!(Option::<u64>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u64>::from_content(&5u64.to_content()), Ok(Some(5)));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_content(&300u64.to_content()).is_err());
        assert!(u64::from_content(&(-1i64).to_content()).is_err());
    }

    #[test]
    fn field_lookup_reports_missing() {
        let map = vec![("a".to_string(), 1u64.to_content())];
        assert!(field(&map, "a").is_ok());
        let err = field(&map, "b").unwrap_err();
        assert!(err.0.contains("`b`"));
    }
}
