//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the benchmarking surface its `benches/` use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical engine, each benchmark is timed
//! with `Instant` over a fixed number of batches and the median batch
//! time is reported. When run by `cargo test` (which passes `--test` to
//! harness-less bench targets), benchmarks execute one iteration each so
//! the test suite stays fast.

use std::time::{Duration, Instant};

/// Re-exported so benches can `use criterion::black_box` if desired.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test" || a == "--list");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, self.test_mode, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.parent.sample_size,
            self.parent.test_mode,
            &mut f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(name: &str, sample_size: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode {
        // Under `cargo test` just prove the benchmark runs.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {name}: ok (test mode)");
        return;
    }
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("bench {name}: median {median:?} over {sample_size} samples");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        let mut ran = false;
        c.bench_function("probe", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion {
            sample_size: 2,
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0;
        group.bench_function("a", |b| {
            b.iter(|| 2 * 2);
            count += 1;
        });
        group.finish();
        assert_eq!(count, 1);
    }
}
