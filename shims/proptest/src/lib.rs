//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the macro surface its property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, range and
//! [`collection::vec`] strategies, and the `prop_assume!` /
//! `prop_assert*!` family.
//!
//! Differences from the real crate: cases are drawn from a fixed-seed
//! RNG (fully deterministic run-to-run) and failing cases are *not*
//! shrunk — the panic message reports the sampled inputs instead, via
//! the `Debug` bound the macro places on every argument.

use std::ops::Range;

/// Runner configuration (the subset the workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG. Each test uses a fixed seed so failures reproduce.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// A strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A full-domain strategy for simple types (`any::<bool>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, 1..200)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + rng.next_u64() as usize % span;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the `proptest!` macro and its callers need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts within a property (panics with the sampled inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines deterministic random-case property tests.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Stable per-test seed: derived from the test name so cases
            // differ between tests but reproduce across runs.
            let seed = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                let mut inputs: Vec<String> = Vec::new();
                $(let sampled = $crate::Strategy::sample(&($strat), &mut rng);
                  inputs.push(format!("{} = {:?}", stringify!($pat), sampled));
                  let $pat = sampled;)+
                let run = move || $body;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        inputs.join(", ")
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 2usize..9, b in 0u64..64) {
            prop_assert!((2..9).contains(&a));
            prop_assert!(b < 64);
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn vec_strategy_sizes(mut xs in collection::vec(0u64..100, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
