//! Scheme face-off: every flow control in the paper's comparison on one
//! adversarial workload.
//!
//! ```sh
//! cargo run --release --example scheme_faceoff
//! ```
//!
//! Runs Transpose traffic (the pattern dimension-ordered and west-first
//! routing hate) at a moderate and a heavy load on every scheme, with
//! each scheme's Table II buffer configuration, and prints a compact
//! scoreboard: latency, accepted throughput, misroutes and buffer cost.

use fastpass_noc::power::{router_area, RouterParams, SchemeKind};
use fastpass_noc::sim::Simulation;
use fastpass_noc::traffic::{SyntheticPattern, SyntheticWorkload};

// The bench crate's registry is the canonical scheme factory, but this
// example shows direct construction through the public APIs.
use fastpass_noc::baselines::{
    drain::DrainConfig, pitstop::PitstopConfig, spin::SpinConfig, swap::SwapConfig, Drain,
    EscapeVc, MinBd, Pitstop, Spin, Swap, Tfc,
};
use fastpass_noc::core::config::SimConfig;
use fastpass_noc::fastpass::{FastPass, FastPassConfig};

fn main() {
    let size = 8;
    println!("Transpose traffic on an {size}x{size} mesh — Table II configurations");
    for rate in [0.08, 0.20] {
        println!("\ninjection rate {rate} packets/node/cycle:");
        println!(
            "{:<10} {:>4} {:>4} {:>10} {:>10} {:>10} {:>12}",
            "scheme", "VNs", "VCs", "latency", "thpt", "misroutes", "router um^2"
        );
        for name in [
            "EscapeVC", "SPIN", "SWAP", "DRAIN", "Pitstop", "MinBD", "TFC", "FastPass",
        ] {
            let (vns, vcs) = match name {
                "Pitstop" => (0, 2),
                "FastPass" => (0, 4),
                "MinBD" => (0, 1),
                _ => (6, 2),
            };
            let cfg = SimConfig::builder()
                .mesh(size, size)
                .vns(vns)
                .vcs_per_vn(vcs)
                .seed(3)
                .build();
            let nodes = cfg.mesh.num_nodes();
            let scheme: Box<dyn fastpass_noc::sim::Scheme> = match name {
                "EscapeVC" => Box::new(EscapeVc::new(1)),
                "SPIN" => Box::new(Spin::new(1, SpinConfig::default())),
                "SWAP" => Box::new(Swap::new(1, SwapConfig::default())),
                "DRAIN" => Box::new(Drain::new(
                    cfg.mesh,
                    1,
                    DrainConfig {
                        period: 8_000,
                        step_cycles: 5,
                    },
                )),
                "Pitstop" => Box::new(Pitstop::new(nodes, 1, PitstopConfig::default())),
                "MinBD" => Box::new(MinBd::new(nodes, 1, Default::default())),
                "TFC" => Box::new(Tfc::new(1)),
                _ => Box::new(FastPass::new(&cfg, FastPassConfig::default())),
            };
            let kind = match name {
                "EscapeVC" => SchemeKind::EscapeVc,
                "SPIN" => SchemeKind::Spin,
                "SWAP" => SchemeKind::Swap,
                "DRAIN" => SchemeKind::Drain,
                "Pitstop" => SchemeKind::Pitstop,
                "MinBD" => SchemeKind::MinBd,
                "TFC" => SchemeKind::Tfc,
                _ => SchemeKind::FastPass,
            };
            let area = router_area(
                kind,
                &RouterParams {
                    vns,
                    vcs_per_vn: vcs,
                    ..RouterParams::default()
                },
            )
            .total();
            let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, rate, 17);
            let mut sim = Simulation::new(cfg, scheme, Box::new(wl));
            let stats = sim.run_windows(4_000, 10_000);
            println!(
                "{:<10} {:>4} {:>4} {:>10.1} {:>10.4} {:>10} {:>12.0}",
                name,
                vns,
                vcs,
                stats.avg_latency(),
                stats.throughput_packets(),
                stats.deflections,
                area,
            );
        }
    }
    println!("\nNote how FastPass reaches baseline-class throughput with the");
    println!("smallest buffered-router area, zero misroutes and no VNs.");
}
