//! Quickstart: simulate FastPass on an 8×8 mesh and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the Table II configuration (0 VNs, 4 VCs per input buffer),
//! runs uniform-random traffic through the FastPass scheme, and prints
//! latency, throughput and the FastPass-specific event counters.

use fastpass_noc::core::config::SimConfig;
use fastpass_noc::fastpass::{FastPass, FastPassConfig};
use fastpass_noc::sim::Simulation;
use fastpass_noc::traffic::{SyntheticPattern, SyntheticWorkload};

fn main() {
    // 1. Configure the network: 8×8 mesh, no virtual networks (that is
    //    FastPass's headline), 4 VCs per input port, 5-flit buffers.
    let cfg = SimConfig::builder()
        .mesh(8, 8)
        .vns(0)
        .vcs_per_vn(4)
        .seed(2026)
        .build();

    // 2. Build the scheme. The default FastPassConfig uses the paper's
    //    design-time slot length K = 2·diameter·inputs·VCs (Qn5).
    let scheme = FastPass::new(&cfg, FastPassConfig::default());
    println!(
        "TDM schedule: K = {} cycles/slot, {} partitions, phase = {} cycles",
        scheme.schedule().slot_cycles(),
        scheme.schedule().partitions(),
        scheme.schedule().phase_cycles(),
    );

    // 3. Attach an open-loop workload: uniform random, 0.10
    //    packets/node/cycle, the paper's 1-/5-flit mix.
    let workload = SyntheticWorkload::new(SyntheticPattern::Uniform, 0.10, 7);

    // 4. Run with the standard warmup + measurement methodology.
    let mut sim = Simulation::new(cfg, Box::new(scheme), Box::new(workload));
    let stats = sim.run_windows(5_000, 20_000);

    // 5. Report.
    println!("delivered            : {} packets", stats.delivered());
    println!("avg latency          : {:.1} cycles", stats.avg_latency());
    println!(
        "throughput           : {:.4} packets/node/cycle",
        stats.throughput_packets()
    );
    println!(
        "FastPass-Packets     : {} ({:.1}% of deliveries)",
        stats.delivered_fastpass,
        100.0 * stats.fastpass_fraction()
    );
    println!(
        "rejected / dropped   : {} / {}",
        stats.rejections, stats.dropped
    );
    assert!(stats.delivered() > 0, "the network must deliver traffic");
}
