//! Congestion cartography with the `noc_sim::inspect` toolkit.
//!
//! ```sh
//! cargo run --release --example congestion_map
//! ```
//!
//! Runs transpose traffic near the saturation knee under plain XY VCT
//! and under FastPass, printing ASCII heatmaps of link utilization and
//! buffer occupancy plus the hottest links. XY concentrates transpose
//! traffic on the diagonal's turn links; FastPass's adaptive regular
//! pass plus its TDM lanes spread the same load and keep latency near
//! zero-load.
//!
//! (Try `--pattern hotspot` through `nocsim` to see the opposite
//! regime: a single hot destination tree-saturates shared-buffer
//! configurations, where deflection routing shines instead.)

use fastpass_noc::baselines::CreditVct;
use fastpass_noc::core::config::SimConfig;
use fastpass_noc::fastpass::{FastPass, FastPassConfig};
use fastpass_noc::sim::inspect;
use fastpass_noc::sim::{Scheme, Simulation};
use fastpass_noc::traffic::{SyntheticPattern, SyntheticWorkload};

fn run(label: &str, vns: usize, scheme: Box<dyn Scheme>) {
    let cfg = SimConfig::builder()
        .mesh(8, 8)
        .vns(vns)
        .vcs_per_vn(if vns == 0 { 4 } else { 2 })
        .seed(1)
        .build();
    let wl = SyntheticWorkload::new(SyntheticPattern::Transpose, 0.09, 9);
    let mut sim = Simulation::new(cfg, scheme, Box::new(wl));
    sim.run(15_000);
    println!("==== {label} ====");
    println!("{}", inspect::congestion_report(&sim.core));
    println!(
        "avg latency {:.1} cycles, {:.1}% FastPass-Packets\n",
        sim.core.stats.avg_latency(),
        100.0 * sim.core.stats.fastpass_fraction()
    );
}

fn main() {
    println!("Transpose traffic at the saturation knee (rate 0.09), 8x8 mesh\n");
    run("plain VCT-XY (6 VN x 2 VC)", 6, Box::new(CreditVct::xy(6)));
    let cfg = SimConfig::builder()
        .mesh(8, 8)
        .vns(0)
        .vcs_per_vn(4)
        .seed(1)
        .build();
    run(
        "FastPass (0 VN x 4 VC)",
        0,
        Box::new(FastPass::new(&cfg, FastPassConfig::default())),
    );
    println!("Legend: '.' idle  ':' light  '+' busy  '#' heavy  '@' saturated");
}
