//! Deadlock rescue: the paper's §II scenario, live.
//!
//! ```sh
//! cargo run --release --example deadlock_rescue
//! ```
//!
//! Runs the same protocol-deadlock-prone workload (coherence
//! transactions, shared buffers, finite home-side backlog) under three
//! flow controls:
//!
//! 1. plain XY VCT with **0 VNs** — the textbook broken configuration:
//!    requests and responses share buffers, the network wedges;
//! 2. plain XY VCT with **6 VNs** — the costly conventional fix;
//! 3. **FastPass with 0 VNs** — the paper's contribution: same buffers
//!    as (1), yet every transaction completes (Lemmas 1–4).

use fastpass_noc::baselines::CreditVct;
use fastpass_noc::core::config::SimConfig;
use fastpass_noc::fastpass::{FastPass, FastPassConfig};
use fastpass_noc::sim::{Scheme, Simulation};
use fastpass_noc::traffic::protocol::{ProtocolConfig, ProtocolWorkload};

fn protocol() -> ProtocolWorkload {
    // Aggressive issue rate + tiny home backlog: requests rapidly fill
    // the network while homes stall, the recipe for protocol deadlock.
    ProtocolWorkload::new(
        16,
        ProtocolConfig {
            mshrs: 12,
            issue_prob: 0.8,
            forward_fraction: 0.2,
            writeback_fraction: 0.2,
            locality: 0.0,
            quota: Some(40),
            home_backlog_limit: 2,
            seed: 99,
        },
    )
}

fn run(label: &str, vns: usize, scheme: Box<dyn Scheme>) {
    let cfg = SimConfig::builder()
        .mesh(4, 4)
        .vns(vns)
        .vcs_per_vn(1)
        .ej_queue_packets(2)
        .inj_queue_packets(2)
        .seed(5)
        .build();
    let mut sim = Simulation::new(cfg, scheme, Box::new(protocol()));
    let budget = 300_000;
    let ran = sim.run(budget);
    let finished = ran < budget;
    println!(
        "{label:<24} {:>9} cycles  consumed {:>6}  starved {:>6}  -> {}",
        ran,
        sim.total_consumed(),
        sim.starvation_cycles(),
        if finished {
            "ALL TRANSACTIONS COMPLETE"
        } else if sim.starvation_cycles() > 50_000 {
            "WEDGED (deadlock)"
        } else {
            "still running (crawling)"
        }
    );
}

fn main() {
    println!("Protocol-deadlock-prone coherence workload, 4x4 mesh, 1 VC:");
    println!();
    run("VCT-XY, 0 VNs", 0, Box::new(CreditVct::xy(0)));
    run("VCT-XY, 6 VNs", 6, Box::new(CreditVct::xy(6)));
    let cfg = SimConfig::builder()
        .mesh(4, 4)
        .vns(0)
        .vcs_per_vn(1)
        .ej_queue_packets(2)
        .inj_queue_packets(2)
        .seed(5)
        .build();
    run(
        "FastPass, 0 VNs",
        0,
        Box::new(FastPass::new(&cfg, FastPassConfig::default())),
    );
    println!();
    println!("FastPass matches the 6-VN fix with the 0-VN buffer budget.");
}
