//! Lane anatomy: visualize the TDM schedule and non-overlapping lanes.
//!
//! ```sh
//! cargo run --release --example lane_anatomy
//! ```
//!
//! Reproduces Fig. 1 and Fig. 4 of the paper in ASCII: for a small mesh
//! it prints, slot by slot, which routers are prime, which partition
//! each prime covers, and verifies (exhaustively) that all possible
//! outbound lanes and returning paths are pairwise disjoint. Also
//! demonstrates the §III-F holistic-path construction for an irregular
//! topology.

use fastpass_noc::core::topology::Mesh;
use fastpass_noc::fastpass::irregular::{holistic_path, segment, IrregularTopo};
use fastpass_noc::fastpass::lane::{lane_footprint, verify_rotation_disjoint};
use fastpass_noc::fastpass::TdmSchedule;

fn main() {
    let mesh = Mesh::new(3, 3);
    let sched = TdmSchedule::new(mesh, 1);
    println!(
        "3x3 mesh: K = {} cycles/slot, {} slots/phase, {} phases/rotation\n",
        sched.slot_cycles(),
        sched.partitions(),
        mesh.height()
    );

    // Fig. 1: walk the first phase slot by slot.
    for slot in 0..sched.partitions() as u64 {
        let cycle = slot * sched.slot_cycles();
        println!(
            "slot {slot} (cycles {}..{}):",
            cycle,
            cycle + sched.slot_cycles()
        );
        for p in 0..sched.partitions() {
            let prime = sched.prime(p, 0);
            let covered = sched.covered_partition(p, cycle);
            let links = lane_footprint(mesh, prime, covered).len();
            println!(
                "  prime {prime} (partition {p}) -> covers column {covered} \
                 ({links} directed links incl. returns)"
            );
        }
        // Draw the mesh with primes marked.
        for y in 0..3 {
            let row: Vec<String> = (0..3)
                .map(|x| {
                    let n = mesh.node(x, y);
                    if (0..3).any(|p| sched.prime(p, 0) == n) {
                        format!("[R{}]", n.index())
                    } else {
                        format!(" R{} ", n.index())
                    }
                })
                .collect();
            println!("    {}", row.join(" "));
        }
    }

    // Fig. 4's property, checked exhaustively for the whole rotation.
    verify_rotation_disjoint(mesh, sched).expect("lanes must never overlap");
    println!("\nFull-rotation lane disjointness: VERIFIED (Fig. 4's property).");

    // §III-F: irregular topologies via holistic paths.
    println!("\nIrregular topology (ring of 6 + 2 chords):");
    let mut topo = IrregularTopo::new(6);
    for i in 0..6 {
        topo.add_channel(i, (i + 1) % 6);
    }
    topo.add_channel(0, 3);
    topo.add_channel(1, 4);
    let path = holistic_path(&topo).expect("connected bidirectional topology");
    println!(
        "holistic path traverses all {} directed links exactly once",
        path.len()
    );
    let lanes = segment(&path, 3);
    for (i, lane) in lanes.iter().enumerate() {
        let pretty: Vec<String> = lane.iter().map(|(a, b)| format!("{a}->{b}")).collect();
        println!("  partition {i}: {}", pretty.join(" "));
    }
}
